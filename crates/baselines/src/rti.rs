//! Variance-based radio tomographic imaging (VRTI).
//!
//! The comparison baseline for WiTrack's 2D accuracy claim (§2). A dense
//! network of `4·nodes_per_side` RSSI sensors rings the monitored area;
//! every node pair is a link. A person near a link's line of sight shadows
//! it, raising the link's RSSI *variance*. Stacking all link variances into
//! a measurement vector `y`, VRTI reconstructs an attenuation image `x` on a
//! pixel grid through the standard ellipse weight model
//!
//! ```text
//! W[l][p] = 1/√(link length)  if  d(p, tx_l) + d(p, rx_l) < len_l + λ
//! y ≈ W x      →      x̂ = argmin ‖Wx − y‖² + α‖x‖²
//! ```
//!
//! solved matrix-free with conjugate gradients; the location estimate is the
//! power-weighted centroid of the brightest region.
//!
//! Key structural difference from WiTrack, and the reason for the accuracy
//! gap: RTI senses *proximity to lines between nodes* at pixel granularity,
//! with tens of sensors; WiTrack measures *time of flight* with centimeter
//! FMCW resolution using 4 antennas.

use rand::Rng;

/// Configuration of the RTI network and reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtiConfig {
    /// Sensors per side of the rectangular perimeter (total = 4×this).
    pub nodes_per_side: usize,
    /// Pixel edge length (m). Standard deployments use 0.2–0.5 m.
    pub pixel_size: f64,
    /// Ellipse excess-path width λ (m): how far from the link line a person
    /// still shadows it.
    pub ellipse_lambda: f64,
    /// Tikhonov regularization weight α.
    pub regularization: f64,
    /// Std-dev of per-link variance measurement noise.
    pub noise_std: f64,
    /// Shadowing response width (m): a link responds when the person is
    /// within this distance of its segment.
    pub shadow_sigma: f64,
    /// Probability that an unrelated link shows spurious variance (indoor
    /// multipath flicker — the dominant error source in deployed VRTI).
    pub multipath_prob: f64,
    /// Probability that a crossed link fails to register the person (deep
    /// fade: the direct path is already weak, so shadowing it changes
    /// nothing measurable).
    pub miss_prob: f64,
}

impl Default for RtiConfig {
    fn default() -> Self {
        RtiConfig {
            nodes_per_side: 5,
            pixel_size: 0.3,
            ellipse_lambda: 0.05,
            regularization: 3.0,
            noise_std: 0.15,
            shadow_sigma: 0.35,
            multipath_prob: 0.12,
            miss_prob: 0.35,
        }
    }
}

/// A deployed RTI network over a rectangular area.
#[derive(Debug, Clone)]
pub struct RtiNetwork {
    cfg: RtiConfig,
    x0: f64,
    y0: f64,
    nx: usize,
    ny: usize,
    nodes: Vec<(f64, f64)>,
    links: Vec<(usize, usize)>,
    /// Sparse weight rows: per link, the (pixel, weight) pairs inside its
    /// ellipse.
    weights: Vec<Vec<(usize, f64)>>,
}

impl RtiNetwork {
    /// Deploys sensors around the rectangle `[x0, x1] × [y0, y1]` and builds
    /// the weight model.
    ///
    /// # Panics
    /// Panics on a degenerate rectangle or zero nodes.
    pub fn new(x0: f64, x1: f64, y0: f64, y1: f64, cfg: RtiConfig) -> RtiNetwork {
        assert!(x1 > x0 && y1 > y0, "degenerate region");
        assert!(cfg.nodes_per_side >= 2, "need at least 2 nodes per side");
        let nx = ((x1 - x0) / cfg.pixel_size).ceil() as usize;
        let ny = ((y1 - y0) / cfg.pixel_size).ceil() as usize;

        // Sensors evenly spaced along each side.
        let mut nodes = Vec::new();
        let n = cfg.nodes_per_side;
        for i in 0..n {
            let f = i as f64 / n as f64;
            nodes.push((x0 + f * (x1 - x0), y0)); // bottom
            nodes.push((x1, y0 + f * (y1 - y0))); // right
            nodes.push((x1 - f * (x1 - x0), y1)); // top
            nodes.push((x0, y1 - f * (y1 - y0))); // left
        }

        let mut links = Vec::new();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                links.push((i, j));
            }
        }

        let mut net = RtiNetwork {
            cfg,
            x0,
            y0,
            nx,
            ny,
            nodes,
            links,
            weights: Vec::new(),
        };
        net.build_weights();
        net
    }

    /// Number of sensors deployed.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links (n·(n−1)/2 — the O(n²) cost the paper contrasts with
    /// its 4 antennas).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Pixel grid dimensions `(nx, ny)`.
    pub fn grid_size(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    fn pixel_center(&self, p: usize) -> (f64, f64) {
        let ix = p % self.nx;
        let iy = p / self.nx;
        (
            self.x0 + (ix as f64 + 0.5) * self.cfg.pixel_size,
            self.y0 + (iy as f64 + 0.5) * self.cfg.pixel_size,
        )
    }

    fn build_weights(&mut self) {
        let n_pix = self.nx * self.ny;
        self.weights = self
            .links
            .iter()
            .map(|&(i, j)| {
                let (ax, ay) = self.nodes[i];
                let (bx, by) = self.nodes[j];
                let len = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(1e-6);
                let w = 1.0 / len.sqrt();
                let mut row = Vec::new();
                for p in 0..n_pix {
                    let (px, py) = self.pixel_center(p);
                    let d1 = ((px - ax).powi(2) + (py - ay).powi(2)).sqrt();
                    let d2 = ((px - bx).powi(2) + (py - by).powi(2)).sqrt();
                    if d1 + d2 < len + self.cfg.ellipse_lambda {
                        row.push((p, w));
                    }
                }
                row
            })
            .collect();
    }

    /// Distance from point `(px, py)` to the segment between nodes `i`, `j`.
    fn distance_to_link(&self, link: usize, px: f64, py: f64) -> f64 {
        let (i, j) = self.links[link];
        let (ax, ay) = self.nodes[i];
        let (bx, by) = self.nodes[j];
        let (dx, dy) = (bx - ax, by - ay);
        let len_sq = dx * dx + dy * dy;
        let t = (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0);
        let (cx, cy) = (ax + t * dx, ay + t * dy);
        ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
    }

    /// Simulates one measurement vector (per-link RSSI variance) for a
    /// person standing at `(px, py)`.
    ///
    /// Links whose segment passes within `shadow_sigma` of the person show
    /// elevated variance — an effectively *binary* response, which is what
    /// limits VRTI's resolution to the link-crossing geometry (a smooth
    /// graded response would allow unrealistic super-resolution by
    /// interpolation). All links carry measurement noise, and a fraction
    /// flicker spuriously from indoor multipath.
    pub fn simulate_measurements<R: Rng + ?Sized>(
        &self,
        px: f64,
        py: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..self.links.len())
            .map(|l| {
                let d = self.distance_to_link(l, px, py);
                let crossed = d < self.cfg.shadow_sigma;
                let registered = crossed && rng.random::<f64>() >= self.cfg.miss_prob;
                let shadow = if registered {
                    0.6 + 0.4 * rng.random::<f64>()
                } else {
                    0.0
                };
                let spurious = if rng.random::<f64>() < self.cfg.multipath_prob {
                    0.8 * rng.random::<f64>()
                } else {
                    0.0
                };
                (shadow + spurious + self.cfg.noise_std * crate::rti::gaussian(rng)).max(0.0)
            })
            .collect()
    }

    /// Reconstructs the attenuation image from link measurements by solving
    /// `(WᵀW + αI) x = Wᵀ y` with conjugate gradients.
    pub fn reconstruct(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.links.len(), "one measurement per link");
        let n_pix = self.nx * self.ny;
        // b = Wᵀ y
        let mut b = vec![0.0; n_pix];
        for (row, &yl) in self.weights.iter().zip(y) {
            for &(p, w) in row {
                b[p] += w * yl;
            }
        }
        // Matrix-free A·x = WᵀW x + αx.
        let apply = |x: &[f64], out: &mut [f64]| {
            out.iter_mut()
                .zip(x)
                .for_each(|(o, &xi)| *o = self.cfg.regularization * xi);
            for row in &self.weights {
                let mut dot = 0.0;
                for &(p, w) in row {
                    dot += w * x[p];
                }
                for &(p, w) in row {
                    out[p] += w * dot;
                }
            }
        };
        conjugate_gradient(apply, &b, 60, 1e-8)
    }

    /// Localizes a person from link measurements: reconstruct, then take the
    /// intensity-weighted centroid of pixels within 50% of the peak.
    pub fn localize(&self, y: &[f64]) -> (f64, f64) {
        let image = self.reconstruct(y);
        let peak = image.iter().cloned().fold(f64::MIN, f64::max);
        let thresh = 0.5 * peak;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sw = 0.0;
        for (p, &v) in image.iter().enumerate() {
            if v >= thresh && v > 0.0 {
                let (px, py) = self.pixel_center(p);
                sx += v * px;
                sy += v * py;
                sw += v;
            }
        }
        if sw <= 0.0 {
            // Pathological: return the grid center.
            return (
                self.x0 + self.nx as f64 * self.cfg.pixel_size / 2.0,
                self.y0 + self.ny as f64 * self.cfg.pixel_size / 2.0,
            );
        }
        (sx / sw, sy / sw)
    }
}

/// Standard normal via Box–Muller (local copy to keep this crate's
/// dependencies minimal).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Conjugate gradients for a symmetric positive-definite operator.
fn conjugate_gradient<F>(apply: F, b: &[f64], max_iters: usize, tol: f64) -> Vec<f64>
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    for _ in 0..max_iters {
        if rs_old.sqrt() < tol {
            break;
        }
        apply(&p, &mut ap);
        let denom: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if denom.abs() < 1e-300 {
            break;
        }
        let alpha = rs_old / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_net() -> RtiNetwork {
        RtiNetwork::new(-2.5, 2.5, 3.0, 9.0, RtiConfig::default())
    }

    #[test]
    fn deployment_counts() {
        let net = demo_net();
        assert_eq!(net.num_nodes(), 20);
        assert_eq!(net.num_links(), 20 * 19 / 2);
        let (nx, ny) = net.grid_size();
        assert!(nx >= 16 && ny >= 20);
    }

    #[test]
    fn cg_solves_identity_like_system() {
        // A = I: solution = b.
        let b = vec![1.0, -2.0, 3.0];
        let x = conjugate_gradient(|v, out| out.copy_from_slice(v), &b, 50, 1e-12);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn cg_solves_diagonal_system() {
        // A = diag(2, 4, 8).
        let b = vec![2.0, 4.0, 8.0];
        let x = conjugate_gradient(
            |v, out| {
                out[0] = 2.0 * v[0];
                out[1] = 4.0 * v[1];
                out[2] = 8.0 * v[2];
            },
            &b,
            50,
            1e-12,
        );
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn localizes_a_person_to_sub_meter_in_the_median() {
        // Individual snapshots can be thrown multiple meters by spurious
        // links (that is the point of the baseline); the *median* over
        // repeated snapshots must still be sub-meter.
        let net = demo_net();
        let mut rng = StdRng::seed_from_u64(5);
        for &(px, py) in &[(0.0, 6.0), (-1.5, 4.0), (2.0, 8.0), (1.0, 5.5)] {
            let mut errs = Vec::new();
            for _ in 0..9 {
                let y = net.simulate_measurements(px, py, &mut rng);
                let (ex, ey) = net.localize(&y);
                errs.push(((ex - px).powi(2) + (ey - py).powi(2)).sqrt());
            }
            let med = witrack_dsp::stats::median(&errs);
            assert!(med < 1.0, "median error {med} at ({px},{py})");
        }
    }

    #[test]
    fn rti_is_coarser_than_a_pixel() {
        // RTI should NOT be centimeter-accurate — that is the entire point
        // of the comparison. Median error over a grid of positions must
        // exceed 15 cm (WiTrack's 2D accuracy regime).
        let net = demo_net();
        let mut rng = StdRng::seed_from_u64(11);
        let mut errs = Vec::new();
        for i in 0..20 {
            let px = -2.0 + 4.0 * (i as f64 / 19.0);
            let py = 3.5 + 5.0 * ((i * 7 % 20) as f64 / 19.0);
            let y = net.simulate_measurements(px, py, &mut rng);
            let (ex, ey) = net.localize(&y);
            errs.push(((ex - px).powi(2) + (ey - py).powi(2)).sqrt());
        }
        let median = witrack_dsp::stats::median(&errs);
        assert!(median > 0.15, "median {median} suspiciously small");
        assert!(median < 1.2, "median {median} suspiciously large");
    }

    #[test]
    fn measurements_respond_to_proximity() {
        let net = demo_net();
        let mut rng = StdRng::seed_from_u64(1);
        let y = net.simulate_measurements(0.0, 6.0, &mut rng);
        // Links far from the person should have near-noise variance; links
        // through the person should be strongly elevated.
        let max = y.iter().cloned().fold(f64::MIN, f64::max);
        let med = witrack_dsp::stats::median(&y);
        assert!(max > 0.8, "max {max}");
        assert!(med < 0.3, "median {med}");
    }

    #[test]
    #[should_panic]
    fn wrong_measurement_count_panics() {
        let net = demo_net();
        net.reconstruct(&[0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn degenerate_region_panics() {
        let _ = RtiNetwork::new(1.0, 1.0, 0.0, 1.0, RtiConfig::default());
    }
}
