//! Baselines the paper compares WiTrack against.
//!
//! * [`rti`] — variance-based **radio tomographic imaging** (Wilson &
//!   Patwari), the device-free localization state of the art the paper
//!   cites: "its 2D accuracy is more than 5× higher than the state of the
//!   art radio tomographic networks" (§2). A perimeter network of RSSI
//!   nodes images link-shadowing variance on a pixel grid.
//! * [`peak_tracker`] — the §4.3 design ablation: track the *strongest*
//!   moving return instead of the *nearest strong* one (the bottom contour).
//!   Under dynamic multipath the strongest return can be a wall bounce,
//!   which is why the paper rejects this approach.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod peak_tracker;
pub mod rti;

pub use peak_tracker::StrongestReturnTracker;
pub use rti::{RtiConfig, RtiNetwork};
