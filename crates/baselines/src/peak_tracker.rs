//! The strongest-return tracking ablation (paper §4.3).
//!
//! WiTrack tracks the *bottom contour* — the nearest strong moving return —
//! because "the point of maximum reflection may abruptly shift due to
//! different indirect paths in the environment" (§4.3). This baseline does
//! what the paper argues against: it tracks the globally strongest moving
//! return, with the same profiling, background subtraction, and denoising
//! stack, so any accuracy gap is attributable to the detection rule alone.

use witrack_dsp::window::WindowKind;
use witrack_fmcw::background::BackgroundSubtractor;
use witrack_fmcw::contour::{ContourConfig, ContourTracker, Detection};
use witrack_fmcw::denoise::{DenoiseConfig, DistanceDenoiser};
use witrack_fmcw::profile::RangeProfiler;
use witrack_fmcw::{SweepConfig, TofFrame};

/// Per-antenna TOF estimation that locks onto the strongest return.
#[derive(Debug, Clone)]
pub struct StrongestReturnTracker {
    cfg: SweepConfig,
    profiler: RangeProfiler,
    background: BackgroundSubtractor,
    contour: ContourTracker,
    denoiser: DistanceDenoiser,
    frame_index: u64,
    sweeps_seen: u64,
}

impl StrongestReturnTracker {
    /// Creates the tracker with tuning identical to the WiTrack defaults so
    /// the comparison isolates the detection rule.
    pub fn new(cfg: SweepConfig, max_round_trip_m: f64) -> StrongestReturnTracker {
        StrongestReturnTracker {
            cfg,
            profiler: RangeProfiler::new(&cfg, WindowKind::Hann, max_round_trip_m),
            background: BackgroundSubtractor::new(),
            contour: ContourTracker::new(cfg, ContourConfig::default()),
            denoiser: DistanceDenoiser::new(DenoiseConfig::default()),
            frame_index: 0,
            sweeps_seen: 0,
        }
    }

    /// Pushes one sweep; emits a frame on frame boundaries, exactly like
    /// `witrack_fmcw::TofEstimator` but using the strongest-return rule.
    pub fn push_sweep(&mut self, samples: &[f64]) -> Option<TofFrame> {
        self.sweeps_seen += 1;
        let profile = self.profiler.push_sweep(samples)?;
        let dt = self.cfg.frame_duration_s();
        let time_s = self.sweeps_seen as f64 * self.cfg.sweep_duration_s;
        let frame = match self.background.push(profile) {
            None => TofFrame {
                frame_index: self.frame_index,
                time_s,
                magnitudes: Vec::new(),
                detection: None,
                denoised: None,
            },
            Some(mags) => {
                let detection: Option<Detection> = self.contour.detect_strongest(mags);
                let denoised = self.denoiser.push(detection.map(|d| d.round_trip_m), dt);
                TofFrame {
                    frame_index: self.frame_index,
                    time_s,
                    magnitudes: mags.to_vec(),
                    detection,
                    denoised,
                }
            }
        };
        self.frame_index += 1;
        Some(frame)
    }

    /// Clears stream state.
    pub fn reset(&mut self) {
        self.profiler.reset();
        self.background.reset();
        self.denoiser.reset();
        self.frame_index = 0;
        self.sweeps_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use witrack_fmcw::TofEstimator;

    fn small_cfg() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 250e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        }
    }

    fn sweep(cfg: &SweepConfig, reflectors: &[(f64, f64)]) -> Vec<f64> {
        let n = cfg.samples_per_sweep();
        let mut out = vec![0.0; n];
        for &(round_trip, amp) in reflectors {
            let tau = round_trip / 299_792_458.0;
            let beat = cfg.beat_for_tof(tau);
            let phase = 2.0 * PI * cfg.start_freq_hz * tau;
            for (i, o) in out.iter_mut().enumerate() {
                let t = i as f64 / cfg.sample_rate_hz;
                *o += amp * (2.0 * PI * beat * t + phase).cos();
            }
        }
        out
    }

    /// Runs both trackers over a walk where a wall bounce (longer path) is
    /// STRONGER than the occluded direct echo, returning (contour median
    /// error, peak median error).
    fn run_occluded_scenario() -> (f64, f64) {
        let cfg = small_cfg();
        let mut contour = TofEstimator::new(cfg, 80.0);
        let mut peak = StrongestReturnTracker::new(cfg, 80.0);
        let mut contour_errs = Vec::new();
        let mut peak_errs = Vec::new();
        for f in 0..160 {
            let rt = 10.0 + 1.5 * f as f64 / 160.0;
            let bounce_rt = rt + 6.0; // side-wall detour
            for _ in 0..cfg.sweeps_per_frame {
                // Direct echo occluded (weak), bounce strong — §4.3's case.
                let s = sweep(&cfg, &[(rt, 0.3), (bounce_rt, 1.0)]);
                if let (Some(cf), Some(pf)) = (contour.push_sweep(&s), peak.push_sweep(&s)) {
                    if f > 20 {
                        if let Some(d) = cf.round_trip_m() {
                            contour_errs.push((d - rt).abs());
                        }
                        if let Some(d) = pf.round_trip_m() {
                            peak_errs.push((d - rt).abs());
                        }
                    }
                }
            }
        }
        (
            witrack_dsp::stats::median(&contour_errs),
            witrack_dsp::stats::median(&peak_errs),
        )
    }

    #[test]
    fn contour_beats_peak_under_dynamic_multipath() {
        let (contour_med, peak_med) = run_occluded_scenario();
        // The peak tracker locks onto the bounce, ~6 m off; the contour
        // stays on the direct path.
        assert!(contour_med < 1.0, "contour median {contour_med}");
        assert!(peak_med > 3.0, "peak median {peak_med} should be fooled");
    }

    #[test]
    fn trackers_agree_without_multipath() {
        let cfg = small_cfg();
        let mut contour = TofEstimator::new(cfg, 80.0);
        let mut peak = StrongestReturnTracker::new(cfg, 80.0);
        let mut diffs = Vec::new();
        for f in 0..100 {
            let rt = 8.0 + 1.0 * f as f64 / 100.0;
            for _ in 0..cfg.sweeps_per_frame {
                let s = sweep(&cfg, &[(rt, 1.0)]);
                if let (Some(cf), Some(pf)) = (contour.push_sweep(&s), peak.push_sweep(&s)) {
                    if let (Some(a), Some(b)) = (cf.round_trip_m(), pf.round_trip_m()) {
                        diffs.push((a - b).abs());
                    }
                }
            }
        }
        assert!(!diffs.is_empty());
        let worst = diffs.iter().cloned().fold(0.0_f64, f64::max);
        assert!(worst < 0.5, "single-path disagreement {worst}");
    }

    #[test]
    fn frame_cadence_matches_contour_pipeline() {
        let cfg = small_cfg();
        let mut peak = StrongestReturnTracker::new(cfg, 60.0);
        let s = sweep(&cfg, &[(12.0, 1.0)]);
        let mut frames = 0;
        for _ in 0..cfg.sweeps_per_frame * 7 {
            if peak.push_sweep(&s).is_some() {
                frames += 1;
            }
        }
        assert_eq!(frames, 7);
        peak.reset();
        let mut first = None;
        for _ in 0..cfg.sweeps_per_frame {
            first = peak.push_sweep(&s);
        }
        assert_eq!(first.unwrap().frame_index, 0);
    }
}
