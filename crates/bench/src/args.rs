//! Minimal CLI parsing for the harness binaries (no external CLI crate —
//! the approved dependency list is fixed, and two flags don't justify one).

/// Common harness options.
///
/// * `--paper` — run at the paper's full scale (100 × 1-minute experiments
///   where applicable) instead of the quick default sized for a laptop.
/// * `--seed N` — base seed (default 1).
/// * `--experiments N` — override the experiment count.
/// * `--duration S` — override the per-experiment duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessArgs {
    /// Full paper scale.
    pub paper_scale: bool,
    /// Base seed.
    pub seed: u64,
    /// Experiment-count override.
    pub experiments: Option<usize>,
    /// Duration override (s).
    pub duration: Option<f64>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            paper_scale: false,
            seed: 1,
            experiments: None,
            duration: None,
        }
    }
}

impl HarnessArgs {
    /// Parses from the process arguments, ignoring unknown flags.
    pub fn parse() -> HarnessArgs {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> HarnessArgs {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--paper" => out.paper_scale = true,
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--experiments" => {
                    out.experiments = it.next().and_then(|s| s.parse().ok());
                }
                "--duration" => {
                    out.duration = it.next().and_then(|s| s.parse().ok());
                }
                _ => {}
            }
        }
        out
    }

    /// Picks an experiment count: override > paper scale > quick default.
    pub fn experiment_count(&self, quick: usize, paper: usize) -> usize {
        self.experiments
            .unwrap_or(if self.paper_scale { paper } else { quick })
    }

    /// Picks a duration: override > paper scale > quick default.
    pub fn duration_s(&self, quick: f64, paper: f64) -> f64 {
        self.duration
            .unwrap_or(if self.paper_scale { paper } else { quick })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let a = parse(&[]);
        assert!(!a.paper_scale);
        assert_eq!(a.seed, 1);
        assert_eq!(a.experiment_count(10, 100), 10);
        assert_eq!(a.duration_s(12.0, 60.0), 12.0);
    }

    #[test]
    fn paper_flag_scales_up() {
        let a = parse(&["--paper"]);
        assert_eq!(a.experiment_count(10, 100), 100);
        assert_eq!(a.duration_s(12.0, 60.0), 60.0);
    }

    #[test]
    fn overrides_win() {
        let a = parse(&[
            "--paper",
            "--experiments",
            "7",
            "--duration",
            "3.5",
            "--seed",
            "99",
        ]);
        assert_eq!(a.experiment_count(10, 100), 7);
        assert_eq!(a.duration_s(12.0, 60.0), 3.5);
        assert_eq!(a.seed, 99);
    }

    #[test]
    fn junk_is_ignored() {
        let a = parse(&["--whatever", "--seed", "not-a-number"]);
        assert_eq!(a.seed, 1);
    }
}
