//! Dump the z tracks of the fall_monitor example scenarios.
use witrack_core::{WiTrack, WiTrackConfig};
use witrack_geom::Vec3;
use witrack_sim::motion::{Activity, ActivityScript};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let sweep = witrack_fmcw::SweepConfig::witrack();
    for (i, activity) in Activity::all().into_iter().enumerate() {
        let cfg = WiTrackConfig {
            sweep,
            ..WiTrackConfig::witrack_default()
        };
        let mut wt = WiTrack::new(cfg).unwrap();
        let channel = Channel {
            scene: Scene::witrack_lab(true),
            array: wt.array().clone(),
            body: BodyModel::adult(),
            reference_amplitude: 100.0,
        };
        let script =
            ActivityScript::generate(activity, Vec3::new(0.0, 5.0, 1.0), 15.0, 40 + i as u64);
        let mut sim = Simulator::new(
            SimConfig {
                sweep,
                noise_std: 0.05,
                seed: 40 + i as u64,
            },
            channel,
            Box::new(script),
        );
        let mut zs = Vec::new();
        while let Some(set) = sim.next_sweeps() {
            let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
            if let Some(u) = wt.push_sweeps(&refs) {
                if u.time_s < 2.0 {
                    continue;
                }
                if let Some(p) = u.position {
                    zs.push((u.time_s, p.z));
                }
            }
        }
        println!("== {} ==", activity.label());
        let stride = (zs.len() / 30).max(1);
        for (t, z) in zs.iter().step_by(stride) {
            print!("({t:.1},{z:.2}) ");
        }
        println!();
    }
}
