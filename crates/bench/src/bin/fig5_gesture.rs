//! Fig. 5 — spectrogram of a walk-then-point scenario.
//!
//! Paper result: whole-body motion paints a wide bright smear; after the
//! person stops, the arm lift (~t = 18 s) and drop (~t = 21 s) appear as two
//! small, weak blobs whose spectral spread is far below the body's — the
//! §6.1 discrimination feature.

use witrack_bench::printing::banner;
use witrack_bench::HarnessArgs;
use witrack_dsp::peak;
use witrack_fmcw::Spectrogram;
use witrack_fmcw::{SweepConfig, TofEstimator};
use witrack_geom::Vec3;
use witrack_sim::motion::PointingScript;
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "F5",
        "gesture spectrogram: walk, stop, lift, drop",
        "body motion = wide smear; arm strokes = small narrow blobs",
    );
    let sweep = SweepConfig::witrack();
    let stance = Vec3::new(0.5, 5.0, 1.0);
    let script = PointingScript::new(stance, Vec3::new(0.3, 0.9, 0.2), args.seed)
        .with_approach(Vec3::new(-2.0, 8.0, 1.0), 1.0);
    let (lift0, lift1) = script.lift_window();
    let (drop0, drop1) = script.drop_window();
    let array = witrack_geom::AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array,
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: args.seed,
        },
        channel,
        Box::new(script),
    );

    let mut est = TofEstimator::new(sweep, 30.0);
    let mut spec: Option<Spectrogram> = None;
    let mut features = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        if let Some(frame) = est.push_sweep(&set.per_rx[0]) {
            if frame.magnitudes.is_empty() {
                continue;
            }
            let s = spec.get_or_insert_with(|| Spectrogram::new(&sweep, frame.magnitudes.len()));
            s.push_row(&frame.magnitudes);
            if let Some(det) = frame.detection {
                // Same significant-bin thresholding as the §6.1 estimator:
                // noise bins above the floor would otherwise dominate the
                // weak arm frames' variance.
                let peak_mag = frame.magnitudes.iter().cloned().fold(0.0_f64, f64::max);
                let thresh = det.noise_floor.max(0.25 * peak_mag);
                let cleaned: Vec<f64> = frame
                    .magnitudes
                    .iter()
                    .map(|&m| if m < thresh { 0.0 } else { m })
                    .collect();
                if let Some(spread) = peak::spread(&cleaned) {
                    features.push((frame.time_s, det.round_trip_m, spread));
                }
            }
        }
    }

    if let Some(s) = spec {
        println!("\n# spectrogram heat map (time down, 0-30 m round trip across)");
        print!("{}", s.ascii(80, 30));
    }
    println!("\n# scripted windows: lift {lift0:.2}-{lift1:.2} s, drop {drop0:.2}-{drop1:.2} s");
    println!("# detections: time_s round_trip_m spectral_spread_bins2");
    let stride = (features.len() / 120).max(1);
    for (t, rt, sp) in features.iter().step_by(stride) {
        println!("{t:.3} {rt:.3} {sp:.2}");
    }
    // The discrimination feature: spread during body motion vs arm strokes.
    let body: Vec<f64> = features
        .iter()
        .filter(|&&(t, _, _)| t < lift0 - 1.5)
        .map(|&(_, _, s)| s)
        .collect();
    let arm: Vec<f64> = features
        .iter()
        .filter(|&&(t, _, _)| (t >= lift0 && t <= lift1) || (t >= drop0 && t <= drop1))
        .map(|&(_, _, s)| s)
        .collect();
    println!(
        "\n# median spread: whole-body {:.1} bins^2, arm strokes {:.1} bins^2 (ratio {:.1}x)",
        witrack_dsp::stats::median(&body),
        witrack_dsp::stats::median(&arm),
        witrack_dsp::stats::median(&body) / witrack_dsp::stats::median(&arm).max(1e-9)
    );
}
