//! A1 (§4.3 ablation) — bottom-contour tracking vs strongest-return
//! tracking under occlusion-driven dynamic multipath.
//!
//! Paper design claim: "this approach has proved to be more robust than
//! tracking the dominant frequency in each sweep", because with the direct
//! path attenuated, the strongest return is often a side-wall bounce.

use witrack_baselines::StrongestReturnTracker;
use witrack_bench::printing::{banner, cm};
use witrack_bench::HarnessArgs;
use witrack_fmcw::{SweepConfig, TofEstimator};
use witrack_geom::{AntennaArray, Vec3};
use witrack_sim::motion::{RandomWalk, Rect};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn run(occlusion_amp: f64, seed: u64, dur: f64) -> (f64, f64) {
    let sweep = SweepConfig::witrack();
    let array = AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let channel = Channel {
        scene: Scene::witrack_lab(false).with_occlusion(occlusion_amp),
        array: array.clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, dur, 0.25, seed);
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed,
        },
        channel,
        Box::new(motion),
    );
    let mut contour = TofEstimator::new(sweep, 40.0);
    let mut peak = StrongestReturnTracker::new(sweep, 40.0);
    let mut contour_errs = Vec::new();
    let mut peak_errs = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let cf = contour.push_sweep(&set.per_rx[0]);
        let pf = peak.push_sweep(&set.per_rx[0]);
        if let (Some(cf), Some(pf)) = (cf, pf) {
            if cf.time_s < 2.0 {
                continue;
            }
            let truth = sim.surface_truth(cf.time_s);
            let rt_true = sim.channel().round_trip(truth, 0);
            if let Some(d) = cf.round_trip_m() {
                contour_errs.push((d - rt_true).abs());
            }
            if let Some(d) = pf.round_trip_m() {
                peak_errs.push((d - rt_true).abs());
            }
        }
    }
    (
        witrack_dsp::stats::median(&contour_errs),
        witrack_dsp::stats::median(&peak_errs),
    )
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "A1",
        "bottom contour vs strongest return (round-trip error, antenna 0)",
        "contour robust to dynamic multipath; strongest return locks onto wall bounces",
    );
    let dur = args.duration_s(10.0, 30.0);
    println!("\nocclusion  contour-median  strongest-median");
    for &occ in &[1.0, 0.5, 0.25, 0.12] {
        let (c, p) = run(occ, args.seed, dur);
        println!("{occ:<10.2} {:<15} {}", cm(c), cm(p));
    }
    println!("\n(occlusion = amplitude factor on the direct body path; bounces unaffected)");
}
