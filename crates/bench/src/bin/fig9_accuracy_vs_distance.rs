//! Fig. 9 — localization error vs distance from the device (through-wall).
//!
//! Paper result: median and 90th-percentile errors grow with distance over
//! 3–11 m (by roughly 5–10 cm of median across the span); accuracy ordering
//! y best, then x, then z at every distance.

use witrack_bench::printing::{banner, print_median_p90_series};
use witrack_bench::{run_parallel, run_tracking, HarnessArgs, TrackingSpec};
use witrack_sim::motion::Rect;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "F9",
        "accuracy vs distance to device, through-wall",
        "median error grows ~5-10 cm from 3 m to 11 m; y < x < z throughout",
    );
    let n = args.experiment_count(8, 100);
    let dur = args.duration_s(12.0, 60.0);
    // Deeper room + walking region reaching 11 m from the array.
    let specs: Vec<TrackingSpec> = (0..n)
        .map(|i| TrackingSpec {
            duration_s: dur,
            seed: args.seed + i as u64 * 97,
            region: Some(Rect {
                x_min: -2.5,
                x_max: 2.5,
                y_min: 3.0,
                y_max: 11.0,
            }),
            room_depth_y: 12.0,
            subject_scale: 0.85 + 0.3 * ((i % 11) as f64 / 10.0),
            ..TrackingSpec::default()
        })
        .collect();
    let results = run_parallel(&specs, run_tracking);

    // Bin per-frame errors by the true distance to the device, rounded to
    // the nearest meter (the paper's binning).
    let mut bins: std::collections::BTreeMap<i64, [Vec<f64>; 3]> = Default::default();
    for r in &results {
        for s in &r.samples {
            let d = s.distance_from_tx.round() as i64;
            let e = bins.entry(d).or_default();
            e[0].push((s.estimate.x - s.truth.x).abs());
            e[1].push((s.estimate.y - s.truth.y).abs());
            e[2].push((s.estimate.z - s.truth.z).abs());
        }
    }
    for (axis, label) in [(0usize, "x"), (1, "y"), (2, "z")] {
        let rows: Vec<(f64, f64, f64)> = bins
            .iter()
            .filter(|(_, v)| v[axis].len() >= 20)
            .map(|(&d, v)| {
                (
                    d as f64,
                    witrack_dsp::stats::percentile(&v[axis], 50.0),
                    witrack_dsp::stats::percentile(&v[axis], 90.0),
                )
            })
            .collect();
        println!("\n# Fig 9({label}) — {label}-axis error vs distance");
        print_median_p90_series("distance_m median_m p90_m", &rows);
    }
}
