//! t_dsp — DSP hot-path kernel microbenchmarks, with a machine-readable
//! `BENCH_dsp.json` artifact.
//!
//! The profile stage (window → pack → CZT zoom transform) is the per-
//! frame cost that bounds sensors-per-core, so this harness times its
//! kernels at the paper shape (2500 samples/sweep, 5 sweeps/frame,
//! 3 receive antennas) three ways:
//!
//! * the **dispatched** path (AVX2+FMA where the host has it, selected
//!   once per process by `witrack_dsp::simd::active()`);
//! * the **scalar** reference kernels (`witrack_dsp::simd::scalar`),
//!   called directly — same process, so the artifact always carries the
//!   scalar-vs-vector ratio regardless of host;
//! * the **fixed-point** front half (i16 samples, Q15 window, i32
//!   accumulation) on both of the above.
//!
//! On top of the kernel rows, two end-to-end rows run a full frame —
//! 3 antennas × 5 sweeps — through [`RangeProfiler`], once from f64
//! sweeps and once from wire-quantized i16 sweeps. Those are the
//! numbers the serving layer's sensors-per-core ceiling is made of.
//!
//! Flags: `--iters N` (kernel iterations, default 20000), `--frames N`
//! (profile-stage frames, default 2000), `--quick` (1/10 of both, for
//! CI smoke), `--out PATH` (default `BENCH_dsp.json`; `-` skips
//! writing).

use std::hint::black_box;
use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_dsp::simd::{self, KernelPath};
use witrack_dsp::window::WindowKind;
use witrack_dsp::Complex;
use witrack_fmcw::{RangeProfiler, SweepConfig};

const MAX_ROUND_TRIP_M: f64 = 22.0;

struct Options {
    iters: u64,
    frames: u64,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        iters: 20_000,
        frames: 2_000,
        out: Some("BENCH_dsp.json".into()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.iters = v;
                }
            }
            "--frames" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.frames = v;
                }
            }
            "--quick" => {
                opts.iters = (opts.iters / 10).max(1);
                opts.frames = (opts.frames / 10).max(1);
            }
            "--out" => {
                opts.out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    opts
}

fn path_name(p: KernelPath) -> &'static str {
    match p {
        KernelPath::Avx2Fma => "avx2_fma",
        KernelPath::Scalar => "scalar",
    }
}

struct Row {
    kernel: &'static str,
    path: &'static str,
    n: usize,
    iters: u64,
    ns_per_call: f64,
}

impl Row {
    fn calls_per_sec(&self) -> f64 {
        1e9 / self.ns_per_call.max(1e-3)
    }
}

/// Times `op` over `iters` calls (after `iters / 10 + 1` warmup calls)
/// and returns nanoseconds per call.
fn time_ns(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    for i in 0..iters / 10 + 1 {
        op(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A deterministic quasi-random f64 in [-1, 1) — no RNG dependency in
/// the timed setup, and identical buffers on every run.
fn wobble(i: usize, seed: u64) -> f64 {
    let x = (i as u64)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(seed);
    ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

fn complex_buf(n: usize, seed: u64) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new(wobble(i, seed), wobble(i, seed ^ 0x9e3779b9)))
        .collect()
}

/// All kernel rows at the paper sweep length `n`: dispatched path and
/// the scalar reference, float and fixed-point. `conv` is the pruned
/// CZT's inner convolution length (what production actually transforms).
fn kernel_rows(n: usize, conv: usize, iters: u64) -> Vec<Row> {
    let active = path_name(simd::active());

    let window = WindowKind::Hann.shared(n);
    let window_q15 = WindowKind::Hann.shared_q15(n);
    let src: Vec<f64> = (0..n).map(|i| wobble(i, 1)).collect();
    let src_q: Vec<i16> = src.iter().map(|&s| (s * 32767.0).round() as i16).collect();
    // The pre-chirp packs are two-for-one: n real samples become n/2
    // complex points.
    let pre = complex_buf(n / 2, 2);
    // Unit-magnitude kernel: repeated in-place multiplies must not walk
    // the buffer off to infinity or down into (slow) denormals.
    let kernel: Vec<Complex> = (0..conv)
        .map(|i| Complex::cis(wobble(i, 3) * std::f64::consts::PI))
        .collect();
    let mut dst = vec![0.0f64; n];
    let mut accum_q = vec![0i32; n];
    let accum_src: Vec<i32> = (0..n).map(|i| (wobble(i, 4) * 80_000.0) as i32).collect();
    let mut packed = vec![Complex::ZERO; n / 2];
    let conv_init = complex_buf(conv, 5);
    let mut conv_buf = conv_init.clone();
    // Butterfly passes grow magnitudes by up to 2x per call; restore
    // pristine data every 16 calls (amortized cost is noise).
    let fft_a_init = complex_buf(conv / 2, 6);
    let fft_b_init = complex_buf(conv / 2, 7);
    let mut fft_a = fft_a_init.clone();
    let mut fft_b = fft_b_init.clone();
    let tw: Vec<Complex> = (0..conv / 2)
        .map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / (conv / 2) as f64))
        .collect();

    let mut rows = Vec::new();
    let mut push = |kernel: &'static str, path: &'static str, n: usize, ns: f64| {
        rows.push(Row {
            kernel,
            path,
            n,
            iters,
            ns_per_call: ns,
        });
    };

    // Window multiply (f64): the first touch of every sweep.
    push(
        "window_scale",
        active,
        n,
        time_ns(iters, |_| {
            simd::window_scale(&mut dst, black_box(&src), &window, 0.2);
        }),
    );
    push(
        "window_scale",
        "scalar",
        n,
        time_ns(iters, |_| {
            simd::scalar::window_scale(&mut dst, black_box(&src), &window, 0.2);
        }),
    );

    // Fixed-point window-accumulate (i16 × Q15 → i32): the quantized
    // front half's replacement for window_scale + frame averaging.
    // Cleared at the frame cadence (5 sweeps), exactly like production.
    push(
        "window_accum_q",
        active,
        n,
        time_ns(iters, |i| {
            if i % 5 == 0 {
                accum_q.fill(0);
            }
            simd::window_accum_q(&mut accum_q, black_box(&src_q), &window_q15);
        }),
    );
    push(
        "window_accum_q",
        "scalar",
        n,
        time_ns(iters, |i| {
            if i % 5 == 0 {
                accum_q.fill(0);
            }
            simd::scalar::window_accum_q(&mut accum_q, black_box(&src_q), &window_q15);
        }),
    );

    // CZT pre-chirp pack (real signal × complex chirp → complex buf).
    push(
        "pack_premul",
        active,
        n,
        time_ns(iters, |_| {
            simd::pack_premul(&mut packed, black_box(&src), &pre);
        }),
    );
    push(
        "pack_premul",
        "scalar",
        n,
        time_ns(iters, |_| {
            simd::scalar::pack_premul(&mut packed, black_box(&src), &pre);
        }),
    );

    // Fixed-point pre-chirp pack: the late-dequantize step (i32 → f64
    // fold into the chirp multiply).
    push(
        "pack_premul_q",
        active,
        n,
        time_ns(iters, |_| {
            simd::pack_premul_q(&mut packed, black_box(&accum_src), 1.0 / 32768.0, &pre);
        }),
    );
    push(
        "pack_premul_q",
        "scalar",
        n,
        time_ns(iters, |_| {
            simd::scalar::pack_premul_q(&mut packed, black_box(&accum_src), 1.0 / 32768.0, &pre);
        }),
    );

    // The Bluestein convolution's frequency-domain kernel multiply —
    // the largest single consumer in the profile stage.
    push(
        "pointwise_mul",
        active,
        conv,
        time_ns(iters, |i| {
            if i % 1024 == 0 {
                conv_buf.copy_from_slice(&conv_init);
            }
            simd::pointwise_mul(&mut conv_buf, black_box(&kernel), false);
        }),
    );
    push(
        "pointwise_mul",
        "scalar",
        conv,
        time_ns(iters, |i| {
            if i % 1024 == 0 {
                conv_buf.copy_from_slice(&conv_init);
            }
            simd::scalar::pointwise_mul(&mut conv_buf, black_box(&kernel), false);
        }),
    );

    // One radix-2 butterfly pass at the convolution FFT's widest rank.
    push(
        "butterflies",
        active,
        conv / 2,
        time_ns(iters, |i| {
            if i % 16 == 0 {
                fft_a.copy_from_slice(&fft_a_init);
                fft_b.copy_from_slice(&fft_b_init);
            }
            simd::butterflies(&mut fft_a, &mut fft_b, black_box(&tw), false);
        }),
    );
    push(
        "butterflies",
        "scalar",
        conv / 2,
        time_ns(iters, |i| {
            if i % 16 == 0 {
                fft_a.copy_from_slice(&fft_a_init);
                fft_b.copy_from_slice(&fft_b_init);
            }
            simd::scalar::butterflies(&mut fft_a, &mut fft_b, black_box(&tw), false);
        }),
    );

    rows
}

/// End-to-end profile stage: 3 antennas × 5 sweeps through
/// [`RangeProfiler`]. Returns ns per frame (all three antennas).
fn profile_frame_ns(cfg: &SweepConfig, frames: u64, quantized: bool) -> f64 {
    const N_RX: usize = 3;
    let n = cfg.samples_per_sweep();
    let mut profilers: Vec<RangeProfiler> = (0..N_RX)
        .map(|_| RangeProfiler::new(cfg, WindowKind::Hann, MAX_ROUND_TRIP_M))
        .collect();
    // Distinct per-(antenna, sweep) signals, built once outside timing.
    let sweeps_f64: Vec<Vec<f64>> = (0..N_RX * cfg.sweeps_per_frame)
        .map(|k| (0..n).map(|i| wobble(i, 100 + k as u64)).collect())
        .collect();
    let sweeps_i16: Vec<Vec<i16>> = sweeps_f64
        .iter()
        .map(|s| s.iter().map(|&x| (x * 32767.0).round() as i16).collect())
        .collect();
    let scale = 1.0 / 32767.0;

    time_ns(frames, |_| {
        for (rx, prof) in profilers.iter_mut().enumerate() {
            let mut out_bins = 0;
            for s in 0..cfg.sweeps_per_frame {
                let k = rx * cfg.sweeps_per_frame + s;
                let profile = if quantized {
                    prof.push_sweep_q(&sweeps_i16[k], scale)
                } else {
                    prof.push_sweep(&sweeps_f64[k])
                };
                if let Some(p) = profile {
                    out_bins = p.len();
                }
            }
            assert!(black_box(out_bins) > 0, "frame must complete");
        }
    })
}

fn main() {
    let opts = parse_options();
    let cfg = SweepConfig::witrack();
    let n = cfg.samples_per_sweep();
    banner(
        "t_dsp",
        "profile-stage kernel microbenchmarks (SIMD / scalar / fixed-point)",
        "§3.1 sweep → range profile at 2500 samples, 5 sweeps/frame, 3 rx antennas",
    );
    // The pruned CZT's inner convolution length at the profiler shape —
    // sized off a throwaway profiler so the kernel rows measure what
    // production transforms.
    let conv = RangeProfiler::new(&cfg, WindowKind::Hann, MAX_ROUND_TRIP_M)
        .plan()
        .inner_len();
    println!(
        "dispatched kernel path: {} ({} f64 lanes); CZT inner length {}\n",
        path_name(simd::active()),
        simd::active().lanes(),
        conv
    );

    let mut rows = kernel_rows(n, conv, opts.iters);

    let f64_ns = profile_frame_ns(&cfg, opts.frames, false);
    let i16_ns = profile_frame_ns(&cfg, opts.frames, true);
    rows.push(Row {
        kernel: "profile_frame_3rx",
        path: "f64",
        n,
        iters: opts.frames,
        ns_per_call: f64_ns,
    });
    rows.push(Row {
        kernel: "profile_frame_3rx",
        path: "i16",
        n,
        iters: opts.frames,
        ns_per_call: i16_ns,
    });

    println!(
        "{:>20} {:>10} {:>8} {:>12} {:>14}",
        "kernel", "path", "n", "ns/call", "calls/s"
    );
    for r in &rows {
        println!(
            "{:>20} {:>10} {:>8} {:>12.0} {:>14.0}",
            r.kernel,
            r.path,
            r.n,
            r.ns_per_call,
            r.calls_per_sec()
        );
    }
    println!(
        "\nprofile stage, full frame (3 rx × {} sweeps × {} samples):",
        cfg.sweeps_per_frame, n
    );
    println!(
        "  f64 front half: {:7.1} us/frame   i16 front half: {:7.1} us/frame",
        f64_ns / 1e3,
        i16_ns / 1e3
    );
    println!(
        "  real-time budget at 80 fps: 12500 us/frame -> {:.0} sensors/core (i16, profile stage only)",
        12_500.0 / (i16_ns / 1e3)
    );

    if let Some(path) = opts.out {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"kernel\": \"{}\", \"path\": \"{}\", \"n\": {}, \"iters\": {}, \
                     \"ns_per_call\": {:.1}, \"calls_per_sec\": {:.1}}}",
                    r.kernel,
                    r.path,
                    r.n,
                    r.iters,
                    r.ns_per_call,
                    r.calls_per_sec()
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"t_dsp\",\n  \"active_path\": \"{}\",\n  \
             \"samples_per_sweep\": {},\n  \"sweeps_per_frame\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
            path_name(simd::active()),
            n,
            cfg.sweeps_per_frame,
            body.join(",\n")
        );
        std::fs::write(&path, json).expect("write artifact");
        println!("\nwrote {path}");
    }
}
