//! T1 (§9.5) — fall detection over randomized activity trials.
//!
//! Paper result, 132 trials (33 per activity): no false alarms from walking
//! or sitting on a chair, 1 false alarm from sitting on the floor, 2 missed
//! falls → precision 96.9 %, recall 93.9 %, F-measure 94.4 %.
//!
//! Quick mode runs 8 trials per activity; `--paper` runs the full 33.

use witrack_bench::printing::banner;
use witrack_bench::runner::{run_activity, ActivitySpec};
use witrack_bench::HarnessArgs;
use witrack_core::fall::{classify_elevation_track, FallConfig};
use witrack_core::metrics::BinaryConfusion;
use witrack_sim::motion::Activity;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "T1",
        "fall detection accuracy (classify logged activity trials)",
        "precision 96.9 %, recall 93.9 %, F-measure 94.4 % over 132 trials",
    );
    let per_activity = args.experiment_count(8, 33);
    let dur = args.duration_s(15.0, 30.0);
    let cfg = FallConfig::default();

    let mut confusion = BinaryConfusion::new();
    let mut per_activity_falls: Vec<(Activity, usize, usize)> = Vec::new();
    for activity in Activity::all() {
        let mut detected = 0;
        for i in 0..per_activity {
            let spec = ActivitySpec {
                activity,
                seed: args.seed + i as u64 * 131 + activity.label().len() as u64,
                duration_s: dur,
                ..ActivitySpec::default()
            };
            let track = run_activity(&spec);
            let verdict = classify_elevation_track(&track, &cfg);
            let is_fall = verdict.is_fall();
            confusion.record(activity == Activity::Fall, is_fall);
            if is_fall {
                detected += 1;
            }
        }
        per_activity_falls.push((activity, detected, per_activity));
    }

    println!("\nactivity            detected-as-fall / trials");
    for (a, d, n) in &per_activity_falls {
        println!("{:<20} {d} / {n}", a.label());
    }
    println!("\ntrials      {}", confusion.total());
    println!(
        "precision   {:.1} %  (paper: 96.9 %)",
        confusion.precision() * 100.0
    );
    println!(
        "recall      {:.1} %  (paper: 93.9 %)",
        confusion.recall() * 100.0
    );
    println!(
        "F-measure   {:.1} %  (paper: 94.4 %)",
        confusion.f_measure() * 100.0
    );
}
