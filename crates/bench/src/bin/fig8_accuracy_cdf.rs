//! Fig. 8 — CDFs of the per-axis location error, line-of-sight and
//! through-wall.
//!
//! Paper result: medians LOS x 9.9 / y 8.6 / z 17.7 cm; through-wall
//! x 13.1 / y 10.25 / z 21.0 cm; 90th percentiles within ~1 ft on x/y and
//! ~2 ft on z. Expected shape: y < x < z, through-wall worse than LOS.
//!
//! Quick mode: 6 × 12 s experiments per condition. `--paper`: 100 × 60 s.

use witrack_bench::printing::{banner, cm, print_cdf};
use witrack_bench::{run_parallel, run_tracking, HarnessArgs, TrackingSpec};
use witrack_core::metrics::AxisErrors;

fn condition(name: &str, through_wall: bool, args: &HarnessArgs) {
    let n = args.experiment_count(6, 100);
    let dur = args.duration_s(12.0, 60.0);
    let specs: Vec<TrackingSpec> = (0..n)
        .map(|i| TrackingSpec {
            through_wall,
            duration_s: dur,
            seed: args.seed + i as u64 * 101,
            subject_scale: 0.85 + 0.3 * ((i % 11) as f64 / 10.0), // 11 subjects
            ..TrackingSpec::default()
        })
        .collect();
    let results = run_parallel(&specs, run_tracking);
    let mut errors = AxisErrors::new();
    for r in &results {
        errors.merge(&r.errors);
    }
    println!(
        "\n--- {name}: {n} experiments x {dur} s, {} samples ---",
        errors.len()
    );
    for (axis, label) in [(0, "x"), (1, "y"), (2, "z")] {
        print_cdf(label, &errors.cdf(axis), 21);
    }
    let (mx, px) = errors.summary(0);
    let (my, py) = errors.summary(1);
    let (mz, pz) = errors.summary(2);
    println!(
        "summary {name}: median x {} y {} z {} | 90th x {} y {} z {}",
        cm(mx),
        cm(my),
        cm(mz),
        cm(px),
        cm(py),
        cm(pz)
    );
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "F8",
        "3D tracking accuracy CDFs (LOS + through-wall)",
        "LOS medians x 9.9 / y 8.6 / z 17.7 cm; through-wall x 13.1 / y 10.25 / z 21.0 cm",
    );
    condition("line-of-sight", false, &args);
    condition("through-wall", true, &args);
}
