//! T3 (§2) — WiTrack's 2D accuracy vs radio tomographic imaging.
//!
//! Paper claim: WiTrack's 2D accuracy is "more than 5× higher than the
//! state of the art radio tomographic networks" — using ~4 antennas where
//! RTI uses tens of sensors and hundreds of links.

use rand::rngs::StdRng;
use rand::SeedableRng;
use witrack_baselines::{RtiConfig, RtiNetwork};
use witrack_bench::printing::{banner, cm};
use witrack_bench::{run_parallel, run_tracking, HarnessArgs, TrackingSpec};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "T3",
        "2D localization: WiTrack vs variance-based RTI",
        "WiTrack 2D error more than 5x smaller, with 4 antennas vs n^2 links",
    );

    // WiTrack: through-wall tracking runs, 2D (xy) error.
    let n = args.experiment_count(5, 20);
    let dur = args.duration_s(12.0, 60.0);
    let specs: Vec<TrackingSpec> = (0..n)
        .map(|i| TrackingSpec {
            duration_s: dur,
            seed: args.seed + i as u64 * 71,
            ..TrackingSpec::default()
        })
        .collect();
    let results = run_parallel(&specs, run_tracking);
    let mut wt_errors = Vec::new();
    for r in &results {
        for s in &r.samples {
            wt_errors.push(s.estimate.distance_xy(s.truth));
        }
    }
    let wt_med = witrack_dsp::stats::median(&wt_errors);

    // RTI: a 20-node network ringing the same area, snapshots at the same
    // kind of positions.
    let net = RtiNetwork::new(-2.5, 2.5, 3.0, 9.0, RtiConfig::default());
    let mut rng = StdRng::seed_from_u64(args.seed);
    let snapshots = args.experiment_count(60, 400);
    let mut rti_errors = Vec::new();
    for i in 0..snapshots {
        let golden = 0.618_033_988_749_895_f64;
        let px = -2.0 + 4.0 * ((i as f64 * golden) % 1.0);
        let py = 3.5 + 5.0 * ((i as f64 * golden * golden) % 1.0);
        let y = net.simulate_measurements(px, py, &mut rng);
        let (ex, ey) = net.localize(&y);
        rti_errors.push(((ex - px).powi(2) + (ey - py).powi(2)).sqrt());
    }
    let rti_med = witrack_dsp::stats::median(&rti_errors);

    println!(
        "\nWiTrack : 1 Tx + 3 Rx antennas, {} tracked frames",
        wt_errors.len()
    );
    println!(
        "  2D error: median {} | 90th {}",
        cm(wt_med),
        cm(witrack_dsp::stats::percentile(&wt_errors, 90.0))
    );
    println!(
        "RTI     : {} nodes, {} links, {snapshots} snapshots",
        net.num_nodes(),
        net.num_links()
    );
    println!(
        "  2D error: median {} | 90th {}",
        cm(rti_med),
        cm(witrack_dsp::stats::percentile(&rti_errors, 90.0))
    );
    println!(
        "\nimprovement factor (median): {:.1}x (paper: > 5x)",
        rti_med / wt_med
    );
}
