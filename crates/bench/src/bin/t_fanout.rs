//! t_fanout — filtered fan-out at ten thousand programmable
//! subscriptions, with a machine-readable `BENCH_fanout.json` artifact.
//!
//! The redesigned Subscribe API moves filtering server-side: the hub
//! evaluates each subscription's compiled program *before* encoding, so
//! an event is encoded once and offered only to the subscribers whose
//! program matched. This harness measures what that buys. A stub
//! pipeline (no RF — the subject is delivery, not tracking) walks one
//! target through a 100-zone corridor, emitting a zone transition
//! almost every fused frame. Two cells run against the same workload:
//!
//! * `unfiltered` — every subscription is a v2-style firehose (world
//!   stream plus all events), the pre-redesign behaviour;
//! * `selective` — subscriptions want only `ZoneEntered` in one
//!   specific zone (`sub i` watches zone `i % 100`), so each event
//!   matches ~1% of the fleet and the world stream is off.
//!
//! Offered bytes (`engine world_bytes`, counted at the offer whether or
//! not the outbox sheds), filter-evaluation counters, and the per-event
//! evaluation latency quantiles (`room event_eval_ns`) come from the
//! engine's telemetry. The bin enforces the redesign's contract itself:
//! the unfiltered cell must offer at least 10x the bytes of the
//! selective cell, else it exits nonzero.
//!
//! Flags: `--subs N` (default 10000), `--conns N` (default 4),
//! `--frames N` (default 240; `--quick` is the CI preset, 120),
//! `--out PATH` (default `BENCH_fanout.json`; `-` skips writing).

use std::sync::Arc;
use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_core::{FramePipeline, FrameReport, TargetReport};
use witrack_fuse::{FuseConfig, Registration, Zone};
use witrack_geom::{RigidTransform, Vec3};
use witrack_obs::{HistoSnapshot, MetricSample, MetricValue};
use witrack_serve::engine::{EngineConfig, OverloadPolicy, PipelineFactory};
use witrack_serve::hub::WorldConfig;
use witrack_serve::transport::{in_proc_pair, InProcTransport};
use witrack_serve::wire::{Hello, PipelineKind};
use witrack_serve::{EventKind, MetricsSnapshot, SensorClient, Server, SubscriptionBuilder};

const ROOM: u32 = 11;
const ZONES: u32 = 100;
/// Fused-epoch period of the stub world (s).
const FRAME_S: f64 = 0.1;
/// Walker step per frame (m) — one zone width, so nearly every frame
/// crosses a zone boundary (1.5 m/s, under the fusion speed gate).
const STEP_M: f64 = 0.15;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Unfiltered,
    Selective,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Unfiltered => "unfiltered",
            Mode::Selective => "selective",
        }
    }
}

struct Options {
    subs: usize,
    conns: usize,
    frames: u64,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        subs: 10_000,
        conns: 4,
        frames: 240,
        out: Some("BENCH_fanout.json".into()),
    };
    let mut frames_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--subs" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.subs = v;
                }
            }
            "--conns" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.conns = v;
                }
            }
            "--frames" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.frames = v;
                    frames_set = true;
                }
            }
            "--quick" if !frames_set => {
                opts.frames = 120;
            }
            "--out" => {
                opts.out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    opts.conns = opts.conns.clamp(1, opts.subs.max(1));
    opts
}

/// A fake tracker: its lone target paces a triangle wave through the
/// corridor, one zone width per frame, so the fused world emits
/// `ZoneExited`/`ZoneEntered`/`OccupancyChanged` at a known cadence.
struct CorridorStub {
    frame: u64,
}

impl FramePipeline for CorridorStub {
    fn num_rx(&self) -> usize {
        1
    }

    fn process_sweeps(&mut self, _per_rx: &[&[f64]]) -> Option<FrameReport> {
        let i = self.frame;
        self.frame += 1;
        let period = 2 * ZONES as u64;
        let phase = (i % period) as i64 - ZONES as i64;
        let y = (phase.abs() as f64).min(ZONES as f64 - 0.5) * STEP_M;
        Some(FrameReport {
            frame_index: i,
            time_s: i as f64 * FRAME_S,
            targets: vec![TargetReport {
                id: Some(1),
                position: Vec3::new(0.0, y, 1.0),
                velocity: None,
                held: false,
                pos_var: Some(Vec3::new(0.01, 0.01, 0.01)),
                innovation: None,
            }],
        })
    }

    fn reset(&mut self) {
        self.frame = 0;
    }
}

fn stub_factory() -> Arc<PipelineFactory> {
    Arc::new(|_hello: &Hello| Ok(Box::new(CorridorStub { frame: 0 }) as Box<dyn FramePipeline>))
}

fn corridor_world() -> WorldConfig {
    let mut builder = FuseConfig::builder().frame_period_s(FRAME_S);
    for z in 0..ZONES {
        builder = builder.zone(Zone {
            id: z,
            name: format!("strip {z}"),
            x: (-1.0, 1.0),
            y: (z as f64 * STEP_M, (z + 1) as f64 * STEP_M),
        });
    }
    // The bench pauses between phases; wall-clock liveness would start
    // marking the (perfectly healthy) stub sensor suspect.
    WorldConfig::single_room(
        ROOM,
        builder.suspect_timeout_s(0.0).build(),
        Registration::new().with_sensor(0, RigidTransform::IDENTITY),
    )
}

/// All rooms' `event_eval_ns` histograms, merged.
fn merged_eval_histo(samples: &[MetricSample]) -> HistoSnapshot {
    let mut merged = HistoSnapshot::default();
    for s in samples {
        if s.key.subsystem == "room" && s.key.name == "event_eval_ns" {
            if let MetricValue::Histo(h) = &s.value {
                merged.merge(h);
            }
        }
    }
    merged
}

/// Polls the engine's metrics until two consecutive reads agree — the
/// in-flight hub work has drained into the counters.
fn settled_metrics(server: &Server) -> MetricsSnapshot {
    let mut prev = server.metrics();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(40));
        let next = server.metrics();
        if next == prev {
            return next;
        }
        prev = next;
    }
}

struct CellResult {
    mode: Mode,
    subs: usize,
    frames: u64,
    elapsed_s: f64,
    events: u64,
    bytes_offered: u64,
    events_evaluated: u64,
    events_matched: u64,
    events_rate_limited: u64,
    updates_shed: u64,
    delivered_msgs: u64,
    eval: HistoSnapshot,
}

impl CellResult {
    fn matched_per_sec(&self) -> f64 {
        self.events_matched as f64 / self.elapsed_s.max(1e-12)
    }
}

fn run_cell(mode: Mode, subs: usize, conns: usize, frames: u64) -> CellResult {
    let server = Server::builder(stub_factory())
        .config(EngineConfig {
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
            ..Default::default()
        })
        .world(corridor_world())
        .start();

    // The subscriber fleet: `subs` subscriptions spread over `conns`
    // connections, ids 1..=subs. Outboxes are deliberately shallow (64):
    // the subject is what the hub *offers*, which is counted at the
    // offer; a lagging subscriber sheds, exactly as in production.
    let mut subscribers: Vec<SensorClient<InProcTransport>> = Vec::with_capacity(conns);
    for _ in 0..conns {
        let (client_end, server_end) = in_proc_pair(64);
        server.attach(server_end).expect("attach subscriber");
        subscribers.push(SensorClient::connect(client_end).expect("connect subscriber"));
    }
    for i in 0..subs {
        let sub_id = (i + 1) as u64;
        let builder = match mode {
            Mode::Unfiltered => SubscriptionBuilder::room(ROOM).id(sub_id),
            Mode::Selective => SubscriptionBuilder::room(ROOM)
                .events(EventKind::ZoneEntered)
                .zone((i as u32) % ZONES)
                .world_updates(false)
                .id(sub_id),
        };
        subscribers[i % conns]
            .subscribe_with(builder.build())
            .expect("subscribe");
    }
    // Acks ride the same shed-on-full outboxes as data (control replies
    // are deliberately not backpressure-exempt), so a burst of thousands
    // can legitimately shed a few. The authoritative install signal is
    // the hub's own counter.
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while server.metrics().subscriptions_opened < subs as u64 {
        assert!(
            Instant::now() < deadline,
            "subscription installs timed out: {}/{} installed",
            server.metrics().subscriptions_opened,
            subs
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    for client in &subscribers {
        assert_eq!(client.stats().rejects, 0, "all programs must install");
    }

    // The feeder: one stub sensor, one tiny wire batch per frame.
    let (feeder_end, server_end) = in_proc_pair(64);
    server.attach(server_end).expect("attach feeder");
    let mut feeder = SensorClient::connect(feeder_end).expect("connect feeder");
    feeder
        .hello(Hello {
            sensor_id: 0,
            kind: PipelineKind::SingleTarget,
            n_rx: 1,
            samples_per_sweep: 1,
            sweeps_per_frame: 1,
            quantized: false,
        })
        .expect("hello");

    let start = Instant::now();
    for seq in 0..frames {
        feeder
            .send_sweeps(0, seq, &[vec![vec![0.0]]])
            .expect("send stub frame");
    }
    feeder.teardown(0).expect("teardown");
    feeder.close();
    let m = settled_metrics(&server);
    let elapsed_s = start.elapsed().as_secs_f64();

    let eval = merged_eval_histo(&server.registry().snapshot());
    server.shutdown();
    let delivered_msgs = subscribers
        .drain(..)
        .map(|client| {
            let s = client.close();
            s.world_updates + s.world_events
        })
        .sum();

    assert_eq!(
        m.subscriptions_opened, subs as u64,
        "every subscription must install"
    );
    CellResult {
        mode,
        subs,
        frames,
        elapsed_s,
        events: m.world_events,
        bytes_offered: m.world_bytes,
        events_evaluated: m.events_evaluated,
        events_matched: m.events_matched,
        events_rate_limited: m.events_rate_limited,
        updates_shed: m.updates_dropped,
        delivered_msgs,
        eval,
    }
}

fn main() {
    let opts = parse_options();
    banner(
        "T-FANOUT",
        "filtered event fan-out at 10k programmable subscriptions",
        "server-side programs: evaluate before encode, offer only to matches",
    );
    println!(
        "config: {} subscriptions over {} connections, {} frames, {} zones, \
         frame period {:.0} ms\n",
        opts.subs,
        opts.conns,
        opts.frames,
        ZONES,
        FRAME_S * 1e3
    );

    println!(
        "{:>11} {:>7} {:>9} {:>13} {:>11} {:>11} {:>9} {:>12} {:>13}",
        "mode",
        "subs",
        "events",
        "bytes off.",
        "evaluated",
        "matched",
        "shed",
        "matched/s",
        "eval p50/p99"
    );
    let cells: Vec<CellResult> = [Mode::Unfiltered, Mode::Selective]
        .into_iter()
        .map(|mode| {
            let r = run_cell(mode, opts.subs, opts.conns, opts.frames);
            println!(
                "{:>11} {:>7} {:>9} {:>13} {:>11} {:>11} {:>9} {:>12.0} {:>13}",
                r.mode.label(),
                r.subs,
                r.events,
                r.bytes_offered,
                r.events_evaluated,
                r.events_matched,
                r.updates_shed,
                r.matched_per_sec(),
                format!(
                    "{:.0}/{:.0}us",
                    r.eval.p50() as f64 / 1e3,
                    r.eval.p99() as f64 / 1e3
                )
            );
            r
        })
        .collect();

    let bytes_ratio =
        cells[0].bytes_offered as f64 / (cells[1].bytes_offered as f64).max(f64::MIN_POSITIVE);
    println!(
        "\nbytes offered, unfiltered vs selective: {:.1}x (contract: >= 10x)",
        bytes_ratio
    );

    if let Some(path) = &opts.out {
        let rows: Vec<String> = cells
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"mode\": \"{}\",\n",
                        "      \"subscriptions\": {},\n",
                        "      \"frames\": {},\n",
                        "      \"elapsed_s\": {:.6},\n",
                        "      \"events\": {},\n",
                        "      \"bytes_offered\": {},\n",
                        "      \"events_evaluated\": {},\n",
                        "      \"events_matched\": {},\n",
                        "      \"events_rate_limited\": {},\n",
                        "      \"updates_shed\": {},\n",
                        "      \"delivered_msgs\": {},\n",
                        "      \"matched_events_per_sec\": {:.2},\n",
                        "      \"eval_p50_ns\": {},\n",
                        "      \"eval_p99_ns\": {}\n",
                        "    }}"
                    ),
                    r.mode.label(),
                    r.subs,
                    r.frames,
                    r.elapsed_s,
                    r.events,
                    r.bytes_offered,
                    r.events_evaluated,
                    r.events_matched,
                    r.events_rate_limited,
                    r.updates_shed,
                    r.delivered_msgs,
                    r.matched_per_sec(),
                    r.eval.p50(),
                    r.eval.p99()
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"t_fanout\",\n",
                "  \"config\": {{\n",
                "    \"subscriptions\": {},\n",
                "    \"connections\": {},\n",
                "    \"frames\": {},\n",
                "    \"zones\": {},\n",
                "    \"frame_period_ms\": {:.1},\n",
                "    \"selectivity\": {:.4},\n",
                "    \"transport\": \"in_process_wire\"\n",
                "  }},\n",
                "  \"results\": [\n{}\n  ],\n",
                "  \"bytes_ratio\": {:.2}\n",
                "}}\n"
            ),
            opts.subs,
            opts.conns,
            opts.frames,
            ZONES,
            FRAME_S * 1e3,
            1.0 / ZONES as f64,
            rows.join(",\n"),
            bytes_ratio
        );
        std::fs::write(path, json).expect("write fanout JSON");
        println!("wrote {path}");
    }

    assert!(
        bytes_ratio >= 10.0,
        "selective programs must cut offered bytes at least 10x \
         (got {bytes_ratio:.1}x)"
    );
}
