//! Fig. 3 — the §4 TOF pipeline stage by stage.
//!
//! (a) raw spectrogram: horizontal stripes from static reflectors (the
//!     Flash Effect) dwarf the body echo;
//! (b) after background subtraction only the moving body (and its dynamic
//!     multipath) remains;
//! (c) the raw bottom contour is noisy; the denoised contour is smooth.
//!
//! Emits gnuplot-ready CSV blocks plus terminal heat maps.

use witrack_bench::printing::banner;
use witrack_bench::HarnessArgs;
use witrack_dsp::window::WindowKind;
use witrack_fmcw::{
    BackgroundSubtractor, ContourConfig, ContourTracker, DistanceDenoiser, RangeProfiler,
    Spectrogram, SweepConfig,
};
use witrack_geom::{AntennaArray, Vec3};
use witrack_sim::motion::{RandomWalk, Rect};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "F3",
        "spectrogram -> background subtraction -> contour -> denoised contour",
        "static stripes vanish after subtraction; bottom contour tracks the walker",
    );
    let sweep = SweepConfig::witrack();
    let dur = args.duration_s(20.0, 20.0);
    let array = AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array,
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, dur, 0.25, args.seed);
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: args.seed,
        },
        channel,
        Box::new(motion),
    );

    // Antenna 0 only, stage by stage (matches the paper's single-antenna
    // figure).
    let mut profiler = RangeProfiler::new(&sweep, WindowKind::Hann, 30.0);
    let mut background = BackgroundSubtractor::new();
    let mut tracker = ContourTracker::new(sweep, ContourConfig::default());
    let mut denoiser = DistanceDenoiser::new(Default::default());
    let bins = profiler.keep_bins();
    let mut raw_spec = Spectrogram::new(&sweep, bins);
    let mut sub_spec = Spectrogram::new(&sweep, bins);
    let mut contour_rows = Vec::new();

    while let Some(set) = sim.next_sweeps() {
        if let Some(profile) = profiler.push_sweep(&set.per_rx[0]) {
            let mags: Vec<f64> = profile.iter().map(|z| z.abs()).collect();
            raw_spec.push_row(&mags);
            if let Some(sub) = background.push(profile) {
                let detection = tracker.detect(sub);
                let denoised =
                    denoiser.push(detection.map(|d| d.round_trip_m), sweep.frame_duration_s());
                contour_rows.push((
                    set.time_s,
                    detection.map(|d| d.round_trip_m),
                    denoised.map(|d| d.round_trip_m),
                ));
                sub_spec.push_row(sub);
            }
        }
    }

    println!("\n# Fig 3(a) raw spectrogram heat map (time down, 0-30 m round trip across)");
    print!("{}", raw_spec.ascii(80, 24));
    println!("\n# Fig 3(b) after background subtraction");
    print!("{}", sub_spec.ascii(80, 24));
    println!("\n# Fig 3(c) contour tracking: time_s raw_round_trip_m denoised_round_trip_m");
    let stride = (contour_rows.len() / 120).max(1);
    for (t, raw, den) in contour_rows.iter().step_by(stride) {
        println!(
            "{t:.3} {} {}",
            raw.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "nan".into()),
            den.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "nan".into()),
        );
    }
    // Quantify the flash-effect removal: the strongest static stripe vs the
    // strongest surviving magnitude.
    let peak_raw = raw_spec.rows().flatten().cloned().fold(0.0_f64, f64::max);
    let peak_sub = sub_spec.rows().flatten().cloned().fold(0.0_f64, f64::max);
    println!(
        "\n# flash effect: peak raw magnitude {peak_raw:.1}, peak after subtraction {peak_sub:.1} ({:.1} dB removed)",
        20.0 * (peak_raw / peak_sub).log10()
    );
}
