//! Per-trial fall-classifier diagnostics.
use witrack_bench::runner::{activity_script_for, run_activity, ActivitySpec};
use witrack_core::fall::{classify_elevation_track, FallConfig, Verdict};
use witrack_sim::motion::Activity;

fn main() {
    let cfg = FallConfig::default();
    for activity in Activity::all() {
        for i in 0..8u64 {
            let spec = ActivitySpec {
                activity,
                seed: 1 + i * 131 + activity.label().len() as u64,
                duration_s: 15.0,
                ..ActivitySpec::default()
            };
            let track = run_activity(&spec);
            let script = activity_script_for(&spec);
            let v = classify_elevation_track(&track, &cfg);
            let detail = match v {
                Verdict::Fall(e) | Verdict::TooSlow(e) => format!(
                    "from {:.2} to {:.2} trans {:.2}",
                    e.from_z, e.to_z, e.transition_s
                ),
                _ => String::new(),
            };
            println!(
                "{:<14} seed{} scripted(trans {:.2} final {:.2}) -> {:?} {}",
                activity.label(),
                spec.seed,
                script.transition_s(),
                script.final_z(),
                std::mem::discriminant(&v),
                detail
            );
        }
    }
}
