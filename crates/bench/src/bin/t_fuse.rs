//! t_fuse — cross-sensor fusion throughput and handoff latency, with a
//! machine-readable `BENCH_fuse.json` artifact.
//!
//! The fusion engine (`witrack-fuse`) sits downstream of the sweep
//! pipelines, so this harness isolates it: synthetic per-sensor
//! [`FrameReport`]s (no RF simulation, no FFTs) drive a
//! [`FusionEngine`] over a (sensors × overlap) matrix. *Overlap* is the
//! fraction of the fleet that sees each walker simultaneously — 1.0
//! means every sensor reports every walker each epoch (the worst-case
//! association load), 0.5 means half do. Throughput is reported as
//! fused track-epochs per second (`fused_tracks_per_sec`) and epochs
//! per second; handoff latency — how many epochs the world model needs
//! to re-anchor a track after its sensor goes dark and another acquires
//! it — is measured separately on a two-sensor hallway and reported in
//! milliseconds at the paper's 80 fps frame cadence. Each cell also
//! reports per-`push_report` latency p50/p99 (a `witrack-obs`
//! histogram around the ingest + epoch-fusion call).
//!
//! Flags: `--sensors A,B,..` (default `2,4,8`), `--overlap A,B,..`
//! (default `0.5,1.0`), `--walkers N` (default 6), `--epochs N`
//! (default 4000), `--out PATH` (default `BENCH_fuse.json`; `-` skips
//! writing).

use std::f64::consts::PI;
use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_core::{FrameReport, TargetReport};
use witrack_fuse::{FuseConfig, FusionEngine, Registration, Zone};
use witrack_geom::{RigidTransform, Vec3};
use witrack_obs::{Histo, HistoSnapshot};

const FRAME_PERIOD_S: f64 = 0.0125; // the paper's 80 fps cadence

struct Options {
    sensors: Vec<usize>,
    overlaps: Vec<f64>,
    walkers: usize,
    epochs: u64,
    out: Option<String>,
}

fn parse_usize_list(s: &str) -> Option<Vec<usize>> {
    s.split(',').map(|p| p.trim().parse().ok()).collect()
}

fn parse_f64_list(s: &str) -> Option<Vec<f64>> {
    s.split(',').map(|p| p.trim().parse().ok()).collect()
}

fn parse_options() -> Options {
    let mut opts = Options {
        sensors: vec![2, 4, 8],
        overlaps: vec![0.5, 1.0],
        walkers: 6,
        epochs: 4000,
        out: Some("BENCH_fuse.json".into()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sensors" => {
                if let Some(v) = it.next().as_deref().and_then(parse_usize_list) {
                    opts.sensors = v;
                }
            }
            "--overlap" => {
                if let Some(v) = it.next().as_deref().and_then(parse_f64_list) {
                    opts.overlaps = v;
                }
            }
            "--walkers" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.walkers = v;
                }
            }
            "--epochs" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.epochs = v;
                }
            }
            "--out" => {
                opts.out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    opts
}

/// Sensors on a ring around a 20 m room, all looking at the center.
fn ring_registration(sensors: usize) -> Registration {
    let mut reg = Registration::new();
    for s in 0..sensors {
        let theta = 2.0 * PI * s as f64 / sensors as f64;
        let pos = Vec3::new(10.0 * theta.cos(), 10.0 * theta.sin(), 0.0);
        // Boresight (+y local) toward the room center.
        reg.insert(s as u32, RigidTransform::from_yaw(theta + PI / 2.0, pos));
    }
    reg
}

/// Walker `w`'s world position at epoch `e`: a slow orbit near the
/// center, phase-offset per walker so tracks stay separated.
fn walker_pos(w: usize, e: u64) -> Vec3 {
    let phase = 2.0 * PI * w as f64 / 11.0;
    let t = e as f64 * FRAME_PERIOD_S;
    Vec3::new(
        3.0 * (0.15 * t + phase).cos() + 0.02 * w as f64,
        3.0 * (0.15 * t + phase).sin(),
        1.0 + 0.1 * (0.5 * t + phase).sin(),
    )
}

fn fuse_cfg() -> FuseConfig {
    FuseConfig {
        frame_period_s: FRAME_PERIOD_S,
        zones: vec![Zone {
            id: 1,
            name: "room".into(),
            x: (-10.0, 10.0),
            y: (-10.0, 10.0),
        }],
        ..FuseConfig::default()
    }
}

struct CellResult {
    sensors: usize,
    overlap: f64,
    walkers: usize,
    epochs: u64,
    fused_track_epochs: u64,
    events: u64,
    elapsed_sec: f64,
    /// Per-`push_report` latency (ingest + any epoch fusion it flushed).
    push_latency: HistoSnapshot,
}

impl CellResult {
    fn fused_tracks_per_sec(&self) -> f64 {
        self.fused_track_epochs as f64 / self.elapsed_sec
    }

    fn epochs_per_sec(&self) -> f64 {
        self.epochs as f64 / self.elapsed_sec
    }
}

/// One (sensors × overlap) cell: every sensor reports its visible
/// walkers every epoch; the engine fuses at the watermark.
fn run_cell(sensors: usize, overlap: f64, walkers: usize, epochs: u64) -> CellResult {
    let reg = ring_registration(sensors);
    let inverses: Vec<RigidTransform> = (0..sensors)
        .map(|s| reg.get(s as u32).expect("registered").inverse())
        .collect();
    let mut engine = FusionEngine::new(fuse_cfg(), reg);
    let seers = ((sensors as f64 * overlap).round() as usize).clamp(1, sensors);
    let var = Vec3::new(0.02, 0.02, 0.05);
    let mut fused_track_epochs = 0u64;
    let mut events = 0u64;
    let push_latency = Histo::new();
    let start = Instant::now();
    let mut report = FrameReport {
        frame_index: 0,
        time_s: 0.0,
        targets: Vec::new(),
    };
    for e in 1..=epochs {
        for (s, inverse) in inverses.iter().enumerate() {
            report.frame_index = e;
            report.time_s = e as f64 * FRAME_PERIOD_S;
            report.targets.clear();
            for w in 0..walkers {
                // Walker w is seen by `seers` consecutive sensors,
                // rotating slowly so coverage handoffs happen naturally.
                let first = (w + (e / 400) as usize) % sensors;
                let visible = (0..seers).any(|k| (first + k) % sensors == s);
                if !visible {
                    continue;
                }
                report.targets.push(TargetReport {
                    id: Some(w as u64),
                    position: inverse.apply(walker_pos(w, e)),
                    velocity: None,
                    held: false,
                    pos_var: Some(var),
                    innovation: None,
                });
            }
            let pushed_at = Instant::now();
            for frame in engine.push_report(s as u32, &report) {
                fused_track_epochs += frame.tracks.len() as u64;
                events += frame.events.len() as u64;
            }
            push_latency.record_since(pushed_at);
        }
    }
    CellResult {
        sensors,
        overlap,
        walkers,
        epochs,
        fused_track_epochs,
        events,
        elapsed_sec: start.elapsed().as_secs_f64().max(1e-9),
        push_latency: push_latency.snapshot(),
    }
}

/// Handoff latency: sensor 0 owns the walker, goes dark at a boundary,
/// sensor 1 starts reporting the next epoch. Latency = epochs until the
/// fused track is measured (non-coasting) again. Averaged over `trials`.
fn measure_handoff_latency(trials: u64) -> f64 {
    let world_from_s1 = RigidTransform::from_yaw(PI, Vec3::new(0.0, 12.0, 0.0));
    let mut total_epochs = 0u64;
    for trial in 0..trials {
        let reg = Registration::new()
            .with_sensor(0, RigidTransform::IDENTITY)
            .with_sensor(1, world_from_s1);
        let s1_inv = world_from_s1.inverse();
        let mut engine = FusionEngine::new(fuse_cfg(), reg);
        let var = Vec3::new(0.02, 0.02, 0.05);
        let pos = |e: u64| Vec3::new(0.1 * (trial % 7) as f64, 2.0 + 0.015 * e as f64, 1.0);
        let boundary = 200u64;
        let mut reacquired_at = None;
        for e in 1..=boundary + 400 {
            for s in 0..2u32 {
                let mut targets = Vec::new();
                let sees = if e <= boundary { s == 0 } else { s == 1 };
                if sees {
                    let local = if s == 0 { pos(e) } else { s1_inv.apply(pos(e)) };
                    targets.push(TargetReport {
                        id: Some(0),
                        position: local,
                        velocity: None,
                        held: false,
                        pos_var: Some(var),
                        innovation: None,
                    });
                }
                let report = FrameReport {
                    frame_index: e,
                    time_s: e as f64 * FRAME_PERIOD_S,
                    targets,
                };
                for frame in engine.push_report(s, &report) {
                    if frame.epoch > boundary && reacquired_at.is_none() {
                        if let Some(t) = frame.tracks.first() {
                            if !t.coasting && t.primary_sensor == Some(1) {
                                reacquired_at = Some(frame.epoch);
                            }
                        }
                    }
                }
            }
        }
        total_epochs += reacquired_at.expect("handoff never completed") - boundary;
    }
    total_epochs as f64 / trials as f64 * FRAME_PERIOD_S * 1e3
}

fn main() {
    let opts = parse_options();
    banner(
        "t_fuse",
        "cross-sensor fusion throughput + handoff latency",
        "beyond the paper: §6 applications lifted onto a fused multi-sensor world model",
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>14} {:>12} {:>10} {:>16}",
        "sensors",
        "overlap",
        "walkers",
        "epochs",
        "fused trk/s",
        "epochs/s",
        "events",
        "push p50/p99 us"
    );
    let mut results = Vec::new();
    for &sensors in &opts.sensors {
        for &overlap in &opts.overlaps {
            let cell = run_cell(sensors, overlap, opts.walkers, opts.epochs);
            println!(
                "{:>8} {:>8.2} {:>8} {:>8} {:>14.0} {:>12.0} {:>10} {:>16}",
                cell.sensors,
                cell.overlap,
                cell.walkers,
                cell.epochs,
                cell.fused_tracks_per_sec(),
                cell.epochs_per_sec(),
                cell.events,
                format!(
                    "{:.1}/{:.1}",
                    cell.push_latency.p50() as f64 / 1e3,
                    cell.push_latency.p99() as f64 / 1e3
                )
            );
            results.push(cell);
        }
    }
    let handoff_ms = measure_handoff_latency(8);
    println!("\nhandoff latency (2 sensors, instant coverage switch): {handoff_ms:.1} ms");
    println!(
        "(paper cadence: one epoch = {:.1} ms; real-time budget per room = 80 epochs/s)",
        FRAME_PERIOD_S * 1e3
    );

    if let Some(path) = opts.out {
        let mut rows = Vec::new();
        for c in &results {
            rows.push(format!(
                concat!(
                    "    {{\"sensors\": {}, \"overlap\": {}, \"walkers\": {}, ",
                    "\"epochs\": {}, \"fused_track_epochs\": {}, \"events\": {}, ",
                    "\"elapsed_sec\": {:.6}, \"fused_tracks_per_sec\": {:.1}, ",
                    "\"epochs_per_sec\": {:.1}, ",
                    "\"push_report_p50_ns\": {}, \"push_report_p99_ns\": {}}}"
                ),
                c.sensors,
                c.overlap,
                c.walkers,
                c.epochs,
                c.fused_track_epochs,
                c.events,
                c.elapsed_sec,
                c.fused_tracks_per_sec(),
                c.epochs_per_sec(),
                c.push_latency.p50(),
                c.push_latency.p99()
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"t_fuse\",\n  \"frame_period_s\": {},\n  \
             \"handoff_latency_ms\": {:.2},\n  \"results\": [\n{}\n  ]\n}}\n",
            FRAME_PERIOD_S,
            handoff_ms,
            rows.join(",\n")
        );
        std::fs::write(&path, json).expect("write artifact");
        println!("\nwrote {path}");
    }
}
