//! t_serve — how many concurrent sensor streams the sharded serving
//! engine sustains at real time, with a machine-readable
//! `BENCH_serve.json` artifact.
//!
//! A deployment's real-time rate is 80 frames/s (one frame per 12.5 ms,
//! §7). This harness records a few rooms of fleet signal up front
//! ([`witrack_sim::fleet`]), pre-encodes each frame as a wire
//! `SweepBatch`, then for every (shard count × sensor count) cell pushes
//! the whole workload through a [`witrack_serve::Server`] over the
//! in-process transport — the full serving path: framing, decode, shard
//! routing, pipeline, update batching — and measures the sustained
//! per-sensor frame rate. A cell is "real-time" when every sensor's rate
//! is ≥ 80 frames/s.
//!
//! Flags: `--sensors A,B,..` (default `4,8,16`), `--shards A,B,..`
//! (default `1,2`), `--frames N` (per sensor, default 48), `--seed N`,
//! `--out PATH` (default `BENCH_serve.json`; `-` skips writing).

use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_core::WiTrackConfig;
use witrack_serve::engine::{EngineConfig, OverloadPolicy};
use witrack_serve::factory::{hello_for, witrack_factory};
use witrack_serve::transport::{in_proc_pair, TransportTx};
use witrack_serve::wire::{self, Message, PipelineKind, SweepBatch, HEADER_LEN};
use witrack_serve::{SensorClient, Server};
use witrack_sim::{FleetConfig, FleetSimulator, SimConfig};

struct Options {
    sensors: Vec<usize>,
    shards: Vec<usize>,
    frames: u64,
    seed: u64,
    out: Option<String>,
}

fn parse_list(s: &str) -> Option<Vec<usize>> {
    s.split(',').map(|p| p.trim().parse().ok()).collect()
}

fn parse_options() -> Options {
    let mut opts = Options {
        sensors: vec![4, 8, 16],
        shards: vec![1, 2],
        frames: 48,
        seed: 7,
        out: Some("BENCH_serve.json".into()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sensors" => {
                if let Some(v) = it.next().as_deref().and_then(parse_list) {
                    opts.sensors = v;
                }
            }
            "--shards" => {
                if let Some(v) = it.next().as_deref().and_then(parse_list) {
                    opts.shards = v;
                }
            }
            "--frames" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.frames = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
            }
            "--out" => {
                opts.out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    opts
}

/// Pre-encoded wire frames, one per processing frame, for a few distinct
/// rooms. Sensor `i` replays room `i mod rooms` with its own sensor id.
fn record_encoded_rooms(
    base: &WiTrackConfig,
    rooms: usize,
    frames: u64,
    seed: u64,
) -> Vec<Vec<Vec<u8>>> {
    let sweeps_per_frame = base.sweep.sweeps_per_frame;
    let duration_s = (frames as f64 + 1.0) * base.sweep.frame_duration_s();
    let fleet = FleetSimulator::new(FleetConfig {
        rooms,
        max_walkers_per_room: 1, // the acceptance scenario is single-target
        duration_s,
        sim: SimConfig {
            sweep: base.sweep,
            noise_std: 0.05,
            seed,
        },
    });
    let recorded = fleet.record_all();
    recorded
        .into_iter()
        .map(|sweeps| {
            sweeps
                .chunks_exact(sweeps_per_frame)
                .take(frames as usize)
                .map(|frame| {
                    // Sensor id and sequence are patched per send.
                    wire::encode(&Message::SweepBatch(SweepBatch::from_sweeps(0, 0, frame)))
                })
                .collect()
        })
        .collect()
}

/// Patches the sensor id and sequence number into an encoded `SweepBatch`
/// frame (payload offsets 0..4 and 4..12).
fn patch_frame(frame: &mut [u8], sensor_id: u32, seq: u64) {
    frame[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&sensor_id.to_le_bytes());
    frame[HEADER_LEN + 4..HEADER_LEN + 12].copy_from_slice(&seq.to_le_bytes());
}

struct CellResult {
    shards: usize,
    sensors: usize,
    frames_per_sensor: u64,
    elapsed_s: f64,
    max_inflight: u64,
    updates_dropped: u64,
}

impl CellResult {
    fn per_sensor_fps(&self) -> f64 {
        self.frames_per_sensor as f64 / self.elapsed_s.max(1e-12)
    }

    fn aggregate_fps(&self) -> f64 {
        self.per_sensor_fps() * self.sensors as f64
    }
}

fn run_cell(
    base: &WiTrackConfig,
    shards: usize,
    sensors: usize,
    frames: u64,
    encoded: &[Vec<Vec<u8>>],
) -> CellResult {
    let server = Server::start(
        EngineConfig {
            num_shards: shards,
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
        },
        witrack_factory(*base),
    );
    let (client_end, server_end) = in_proc_pair(128);
    server.attach(server_end).expect("in-proc attach");
    let mut client = SensorClient::connect(client_end).expect("in-proc connect");
    for id in 0..sensors as u32 {
        client
            .hello(hello_for(base, id, PipelineKind::SingleTarget))
            .expect("hello");
    }
    let start = Instant::now();
    for f in 0..frames {
        for id in 0..sensors as u32 {
            let mut bytes = encoded[id as usize % encoded.len()][f as usize].clone();
            patch_frame(&mut bytes, id, f);
            client.tx().send_frame(bytes).expect("send");
        }
    }
    for id in 0..sensors as u32 {
        client.teardown(id).expect("teardown");
    }
    // close() returns once the server has finished responding, so the
    // elapsed time covers every frame fully processed.
    let stats = client.close();
    let elapsed_s = start.elapsed().as_secs_f64();
    assert_eq!(stats.rejects, 0, "the workload must be protocol-clean");
    let m = server.shutdown();
    // The engine may shed updates to a lagging client outbox (e.g. a
    // scheduler stall of the drain thread on a loaded CI host); that is
    // load-shedding behaving as designed, not a measurement failure, so
    // report it instead of asserting it away. Shed or not, every frame
    // was *processed*, which is what the throughput number measures.
    let expected = frames * sensors as u64;
    if stats.frames < expected {
        eprintln!(
            "note: client received {}/{} frames ({} server->client messages shed to a \
             lagging outbox)",
            stats.frames, expected, m.updates_dropped
        );
    }
    assert_eq!(m.frames_emitted, expected, "every frame must be processed");
    CellResult {
        shards,
        sensors,
        frames_per_sensor: frames,
        elapsed_s,
        max_inflight: m.max_inflight,
        updates_dropped: m.updates_dropped,
    }
}

fn main() {
    let opts = parse_options();
    banner(
        "T-SERVE",
        "concurrent sensor streams sustained by the sharded serving engine",
        "real-time budget: 80 frames/s per sensor (one frame per 12.5 ms, §7)",
    );
    let base = WiTrackConfig::witrack_default();
    let frame_period_s = base.sweep.frame_duration_s();
    let realtime_fps = 1.0 / frame_period_s;
    let rooms = 4.min(opts.sensors.iter().copied().max().unwrap_or(1));
    eprintln!(
        "recording {} room(s) of fleet signal ({} frames each)...",
        rooms, opts.frames
    );
    let encoded = record_encoded_rooms(&base, rooms, opts.frames, opts.seed);

    println!(
        "config: {} samples/sweep, {} sweeps/frame, 3 rx antennas, frame period {:.1} ms\n",
        base.sweep.samples_per_sweep(),
        base.sweep.sweeps_per_frame,
        frame_period_s * 1e3
    );
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "shards", "sensors", "frames", "elapsed", "fps/sensor", "aggregate", "realtime"
    );
    let mut results = Vec::new();
    for &s in &opts.shards {
        for &k in &opts.sensors {
            let r = run_cell(&base, s, k, opts.frames, &encoded);
            println!(
                "{:>6} {:>8} {:>8} {:>9.3}s {:>12.1} {:>12.1} {:>9}",
                r.shards,
                r.sensors,
                r.frames_per_sensor,
                r.elapsed_s,
                r.per_sensor_fps(),
                r.aggregate_fps(),
                if r.per_sensor_fps() >= realtime_fps {
                    "yes"
                } else {
                    "NO"
                }
            );
            results.push(r);
        }
    }
    let sustained = results
        .iter()
        .filter(|r| r.per_sensor_fps() >= realtime_fps)
        .map(|r| r.sensors)
        .max()
        .unwrap_or(0);
    println!("\nsensors sustained at real time: {sustained}");

    if let Some(path) = &opts.out {
        let cells: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"shards\": {},\n",
                        "      \"sensors\": {},\n",
                        "      \"frames_per_sensor\": {},\n",
                        "      \"elapsed_s\": {:.6},\n",
                        "      \"per_sensor_fps\": {:.2},\n",
                        "      \"aggregate_fps\": {:.2},\n",
                        "      \"realtime\": {},\n",
                        "      \"max_inflight\": {},\n",
                        "      \"updates_dropped\": {}\n",
                        "    }}"
                    ),
                    r.shards,
                    r.sensors,
                    r.frames_per_sensor,
                    r.elapsed_s,
                    r.per_sensor_fps(),
                    r.aggregate_fps(),
                    r.per_sensor_fps() >= realtime_fps,
                    r.max_inflight,
                    r.updates_dropped
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"t_serve\",\n",
                "  \"config\": {{\n",
                "    \"samples_per_sweep\": {},\n",
                "    \"sweeps_per_frame\": {},\n",
                "    \"num_rx\": 3,\n",
                "    \"frame_period_ms\": {:.3},\n",
                "    \"realtime_frames_per_sec\": {:.1},\n",
                "    \"rooms_recorded\": {},\n",
                "    \"pipeline\": \"single_target\",\n",
                "    \"transport\": \"in_process_wire\"\n",
                "  }},\n",
                "  \"results\": [\n{}\n  ],\n",
                "  \"sensors_sustained_realtime\": {}\n",
                "}}\n"
            ),
            base.sweep.samples_per_sweep(),
            base.sweep.sweeps_per_frame,
            frame_period_s * 1e3,
            realtime_fps,
            rooms,
            cells.join(",\n"),
            sustained
        );
        std::fs::write(path, json).expect("write serve JSON");
        println!("wrote {path}");
    }
}
