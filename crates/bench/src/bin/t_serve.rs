//! t_serve — how many concurrent sensor streams the sharded serving
//! engine sustains at real time, with a machine-readable
//! `BENCH_serve.json` artifact.
//!
//! A deployment's real-time rate is 80 frames/s (one frame per 12.5 ms,
//! §7). This harness records a few rooms of fleet signal up front
//! ([`witrack_sim::fleet`], flat frame buffers), pre-encodes each frame
//! as a wire batch — the classic f64 `SweepBatch` and/or the wire-v2
//! quantized `SweepBatchQ` (i16 + scale, 4× fewer sample bytes) — then
//! for every (wire × shard count × sensor count) cell pushes the whole
//! workload through a [`witrack_serve::Server`] over the in-process
//! transport: framing, pooled decode (with dequantization), shard
//! routing, pipeline, pooled update encode. It measures the sustained
//! per-sensor frame rate, the wire byte rate, and — from the engine's
//! telemetry registry — per-shard queue-wait and dequeue-to-report
//! latency p50/p99. A cell is "real-time" when every sensor's rate is
//! ≥ 80 frames/s.
//!
//! Flags: `--sensors A,B,..` (default `4,8,16,24,32,40`), `--shards
//! A,B,..` (default `1,2`), `--frames N` (per sensor, default 48),
//! `--wire i16|f64|both` (default `both`), `--seed N`, `--out PATH`
//! (default `BENCH_serve.json`; `-` skips writing).

use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_core::WiTrackConfig;
use witrack_obs::{HistoSnapshot, MetricSample, MetricValue};
use witrack_serve::engine::{EngineConfig, OverloadPolicy};
use witrack_serve::factory::{hello_for, hello_quantized_for, witrack_factory};
use witrack_serve::transport::{in_proc_pair, TransportTx};
use witrack_serve::wire::{self, Message, PipelineKind, SweepBatch, SweepBatchQ, HEADER_LEN};
use witrack_serve::{SensorClient, Server};
use witrack_sim::{FleetConfig, FleetSimulator, SimConfig};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireKind {
    F64,
    I16,
}

impl WireKind {
    fn label(self) -> &'static str {
        match self {
            WireKind::F64 => "f64",
            WireKind::I16 => "i16",
        }
    }
}

struct Options {
    sensors: Vec<usize>,
    shards: Vec<usize>,
    wires: Vec<WireKind>,
    frames: u64,
    seed: u64,
    out: Option<String>,
}

fn parse_list(s: &str) -> Option<Vec<usize>> {
    s.split(',').map(|p| p.trim().parse().ok()).collect()
}

fn parse_options() -> Options {
    let mut opts = Options {
        sensors: vec![4, 8, 16, 24, 32, 40],
        shards: vec![1, 2],
        wires: vec![WireKind::I16, WireKind::F64],
        frames: 48,
        seed: 7,
        out: Some("BENCH_serve.json".into()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sensors" => {
                if let Some(v) = it.next().as_deref().and_then(parse_list) {
                    opts.sensors = v;
                }
            }
            "--shards" => {
                if let Some(v) = it.next().as_deref().and_then(parse_list) {
                    opts.shards = v;
                }
            }
            "--wire" => match it.next().as_deref() {
                Some("f64") => opts.wires = vec![WireKind::F64],
                Some("i16") => opts.wires = vec![WireKind::I16],
                Some("both") => opts.wires = vec![WireKind::I16, WireKind::F64],
                other => panic!("--wire must be f64|i16|both, got {other:?}"),
            },
            "--frames" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.frames = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
            }
            "--out" => {
                opts.out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    opts
}

/// Flat per-frame sample buffers for a few distinct rooms (sensor `i`
/// replays room `i mod rooms` with its own sensor id and sequence).
fn record_rooms(base: &WiTrackConfig, rooms: usize, frames: u64, seed: u64) -> Vec<Vec<Vec<f64>>> {
    let duration_s = (frames as f64 + 1.0) * base.sweep.frame_duration_s();
    let fleet = FleetSimulator::new(FleetConfig {
        rooms,
        max_walkers_per_room: 1, // the acceptance scenario is single-target
        duration_s,
        sim: SimConfig {
            sweep: base.sweep,
            noise_std: 0.05,
            seed,
        },
    });
    let mut recorded = fleet.record_frames_flat(base.sweep.sweeps_per_frame);
    for room in &mut recorded {
        room.truncate(frames as usize);
    }
    recorded
}

/// Pre-encodes every room frame for one wire kind. Sensor id and
/// sequence are zero here and patched per send (same payload offsets in
/// both batch forms).
fn encode_rooms(
    base: &WiTrackConfig,
    rooms: &[Vec<Vec<f64>>],
    wire_kind: WireKind,
) -> Vec<Vec<Vec<u8>>> {
    let sweeps = base.sweep.sweeps_per_frame;
    let samples = base.sweep.samples_per_sweep();
    rooms
        .iter()
        .map(|room| {
            room.iter()
                .map(|flat| {
                    let batch = SweepBatch {
                        sensor_id: 0,
                        seq: 0,
                        n_sweeps: sweeps as u16,
                        n_rx: 3,
                        samples_per_sweep: samples as u32,
                        data: flat.clone(),
                    };
                    match wire_kind {
                        WireKind::F64 => wire::encode(&Message::SweepBatch(batch)),
                        WireKind::I16 => {
                            wire::encode(&Message::SweepBatchQ(SweepBatchQ::quantize(&batch)))
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Patches the sensor id and sequence number into an encoded sweep-batch
/// frame (payload offsets 0..4 and 4..12, identical for both forms).
fn patch_frame(frame: &mut [u8], sensor_id: u32, seq: u64) {
    frame[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&sensor_id.to_le_bytes());
    frame[HEADER_LEN + 4..HEADER_LEN + 12].copy_from_slice(&seq.to_le_bytes());
}

/// All shards' histograms for one `("shard", name)` series, merged.
fn merged_shard_histo(samples: &[MetricSample], name: &str) -> HistoSnapshot {
    let mut merged = HistoSnapshot::default();
    for s in samples {
        if s.key.subsystem == "shard" && s.key.name == name {
            if let MetricValue::Histo(h) = &s.value {
                merged.merge(h);
            }
        }
    }
    merged
}

struct CellResult {
    wire: WireKind,
    shards: usize,
    sensors: usize,
    frames_per_sensor: u64,
    bytes_per_frame: usize,
    elapsed_s: f64,
    max_inflight: u64,
    updates_dropped: u64,
    /// Merged across shards: enqueue→dequeue wait per batch.
    queue_wait: HistoSnapshot,
    /// Merged across shards: dequeue→report-sent service time per batch.
    service: HistoSnapshot,
}

impl CellResult {
    fn per_sensor_fps(&self) -> f64 {
        self.frames_per_sensor as f64 / self.elapsed_s.max(1e-12)
    }

    fn aggregate_fps(&self) -> f64 {
        self.per_sensor_fps() * self.sensors as f64
    }

    fn wire_mb_per_sec(&self) -> f64 {
        self.aggregate_fps() * self.bytes_per_frame as f64 / 1e6
    }
}

fn run_cell(
    base: &WiTrackConfig,
    wire_kind: WireKind,
    shards: usize,
    sensors: usize,
    frames: u64,
    encoded: &[Vec<Vec<u8>>],
) -> CellResult {
    let server = Server::start(
        EngineConfig {
            num_shards: shards,
            // Deep enough that the producer rarely blocks mid-burst: on a
            // single-core host every block/wake pair is two context
            // switches, and a shallow queue (the old 8) spent ~10% of the
            // per-frame budget thrashing between producer and shard
            // threads. 32 also lets the drain loop pull larger batches,
            // which the cache-blocked frame dispatch turns into locality.
            queue_capacity: 32,
            overload: OverloadPolicy::Block,
        },
        witrack_factory(*base),
    );
    let (client_end, server_end) = in_proc_pair(128);
    server.attach(server_end).expect("in-proc attach");
    let mut client = SensorClient::connect(client_end).expect("in-proc connect");
    for id in 0..sensors as u32 {
        let hello = match wire_kind {
            WireKind::F64 => hello_for(base, id, PipelineKind::SingleTarget),
            WireKind::I16 => hello_quantized_for(base, id, PipelineKind::SingleTarget),
        };
        client.hello(hello).expect("hello");
    }
    let bytes_per_frame = encoded[0][0].len();
    let start = Instant::now();
    for f in 0..frames {
        for id in 0..sensors as u32 {
            let mut bytes = encoded[id as usize % encoded.len()][f as usize].clone();
            patch_frame(&mut bytes, id, f);
            client.tx().send_frame(bytes).expect("send");
        }
    }
    for id in 0..sensors as u32 {
        client.teardown(id).expect("teardown");
    }
    // close() returns once the server has finished responding, so the
    // elapsed time covers every frame fully processed.
    let stats = client.close();
    let elapsed_s = start.elapsed().as_secs_f64();
    assert_eq!(stats.rejects, 0, "the workload must be protocol-clean");
    let samples = server.registry().snapshot();
    let queue_wait = merged_shard_histo(&samples, "queue_wait_ns");
    let service = merged_shard_histo(&samples, "dequeue_to_report_ns");
    let m = server.shutdown();
    // The engine may shed updates to a lagging client outbox (e.g. a
    // scheduler stall of the drain thread on a loaded CI host); that is
    // load-shedding behaving as designed, not a measurement failure, so
    // report it instead of asserting it away. Shed or not, every frame
    // was *processed*, which is what the throughput number measures.
    let expected = frames * sensors as u64;
    if stats.frames < expected {
        eprintln!(
            "note: client received {}/{} frames ({} server->client messages shed to a \
             lagging outbox)",
            stats.frames, expected, m.updates_dropped
        );
    }
    assert_eq!(m.frames_emitted, expected, "every frame must be processed");
    CellResult {
        wire: wire_kind,
        shards,
        sensors,
        frames_per_sensor: frames,
        bytes_per_frame,
        elapsed_s,
        max_inflight: m.max_inflight,
        updates_dropped: m.updates_dropped,
        queue_wait,
        service,
    }
}

fn main() {
    let opts = parse_options();
    banner(
        "T-SERVE",
        "concurrent sensor streams sustained by the sharded serving engine",
        "real-time budget: 80 frames/s per sensor (one frame per 12.5 ms, §7)",
    );
    let base = WiTrackConfig::witrack_default();
    let frame_period_s = base.sweep.frame_duration_s();
    let realtime_fps = 1.0 / frame_period_s;
    let rooms = 4.min(opts.sensors.iter().copied().max().unwrap_or(1));
    eprintln!(
        "recording {} room(s) of fleet signal ({} frames each)...",
        rooms, opts.frames
    );
    let recorded = record_rooms(&base, rooms, opts.frames, opts.seed);

    println!(
        "config: {} samples/sweep, {} sweeps/frame, 3 rx antennas, frame period {:.1} ms\n",
        base.sweep.samples_per_sweep(),
        base.sweep.sweeps_per_frame,
        frame_period_s * 1e3
    );
    println!(
        "{:>5} {:>6} {:>8} {:>8} {:>10} {:>12} {:>12} {:>10} {:>9} {:>15}",
        "wire",
        "shards",
        "sensors",
        "frames",
        "elapsed",
        "fps/sensor",
        "aggregate",
        "MB/s",
        "realtime",
        "svc p50/p99 us"
    );
    let mut results = Vec::new();
    for &wire_kind in &opts.wires {
        let encoded = encode_rooms(&base, &recorded, wire_kind);
        for &s in &opts.shards {
            for &k in &opts.sensors {
                let r = run_cell(&base, wire_kind, s, k, opts.frames, &encoded);
                println!(
                    "{:>5} {:>6} {:>8} {:>8} {:>9.3}s {:>12.1} {:>12.1} {:>10.1} {:>9} {:>15}",
                    r.wire.label(),
                    r.shards,
                    r.sensors,
                    r.frames_per_sensor,
                    r.elapsed_s,
                    r.per_sensor_fps(),
                    r.aggregate_fps(),
                    r.wire_mb_per_sec(),
                    if r.per_sensor_fps() >= realtime_fps {
                        "yes"
                    } else {
                        "NO"
                    },
                    format!(
                        "{:.0}/{:.0}",
                        r.service.p50() as f64 / 1e3,
                        r.service.p99() as f64 / 1e3
                    )
                );
                results.push(r);
            }
        }
    }
    let sustained_for = |wire_kind: WireKind| {
        results
            .iter()
            .filter(|r| r.wire == wire_kind && r.per_sensor_fps() >= realtime_fps)
            .map(|r| r.sensors)
            .max()
            .unwrap_or(0)
    };
    println!();
    for &w in &opts.wires {
        println!(
            "sensors sustained at real time ({}): {}",
            w.label(),
            sustained_for(w)
        );
    }

    if let Some(path) = &opts.out {
        let cells: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"wire\": \"{}\",\n",
                        "      \"shards\": {},\n",
                        "      \"sensors\": {},\n",
                        "      \"frames_per_sensor\": {},\n",
                        "      \"bytes_per_frame\": {},\n",
                        "      \"elapsed_s\": {:.6},\n",
                        "      \"per_sensor_fps\": {:.2},\n",
                        "      \"aggregate_fps\": {:.2},\n",
                        "      \"wire_mb_per_sec\": {:.2},\n",
                        "      \"realtime\": {},\n",
                        "      \"max_inflight\": {},\n",
                        "      \"updates_dropped\": {},\n",
                        "      \"queue_wait_p50_ns\": {},\n",
                        "      \"queue_wait_p99_ns\": {},\n",
                        "      \"dequeue_to_report_p50_ns\": {},\n",
                        "      \"dequeue_to_report_p99_ns\": {}\n",
                        "    }}"
                    ),
                    r.wire.label(),
                    r.shards,
                    r.sensors,
                    r.frames_per_sensor,
                    r.bytes_per_frame,
                    r.elapsed_s,
                    r.per_sensor_fps(),
                    r.aggregate_fps(),
                    r.wire_mb_per_sec(),
                    r.per_sensor_fps() >= realtime_fps,
                    r.max_inflight,
                    r.updates_dropped,
                    r.queue_wait.p50(),
                    r.queue_wait.p99(),
                    r.service.p50(),
                    r.service.p99()
                )
            })
            .collect();
        let sustained_fields: Vec<String> = opts
            .wires
            .iter()
            .map(|w| format!("    \"{}\": {}", w.label(), sustained_for(*w)))
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"t_serve\",\n",
                "  \"config\": {{\n",
                "    \"samples_per_sweep\": {},\n",
                "    \"sweeps_per_frame\": {},\n",
                "    \"num_rx\": 3,\n",
                "    \"frame_period_ms\": {:.3},\n",
                "    \"realtime_frames_per_sec\": {:.1},\n",
                "    \"rooms_recorded\": {},\n",
                "    \"pipeline\": \"single_target\",\n",
                "    \"transport\": \"in_process_wire\"\n",
                "  }},\n",
                "  \"results\": [\n{}\n  ],\n",
                "  \"sensors_sustained_realtime\": {{\n{}\n  }}\n",
                "}}\n"
            ),
            base.sweep.samples_per_sweep(),
            base.sweep.sweeps_per_frame,
            frame_period_s * 1e3,
            realtime_fps,
            rooms,
            cells.join(",\n"),
            sustained_fields.join(",\n")
        );
        std::fs::write(path, json).expect("write serve JSON");
        println!("wrote {path}");
    }
}
