//! Fig. 6 — tracked elevation vs time for the four §9.5 activities.
//!
//! Paper result: walking stays high; sitting on a chair settles ~0.6 m;
//! sitting on the floor and falling both end near the ground, but the fall's
//! descent is much faster — the separation the §6.2 detector exploits.

use witrack_bench::printing::banner;
use witrack_bench::runner::{run_activity, ActivitySpec};
use witrack_bench::HarnessArgs;
use witrack_sim::motion::Activity;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "F6",
        "elevation vs time per activity",
        "walk ~constant; sit-chair ~0.6 m; sit-floor low & slow; fall low & fast",
    );
    let dur = args.duration_s(18.0, 30.0);
    for activity in Activity::all() {
        let spec = ActivitySpec {
            activity,
            seed: args.seed + 11,
            duration_s: dur,
            ..ActivitySpec::default()
        };
        let track = run_activity(&spec);
        println!("\n# {} ({} samples)", activity.label(), track.len());
        println!("# time_s elevation_m");
        // Subsample to ~100 rows per activity for readable output.
        let stride = (track.len() / 100).max(1);
        for (t, z) in track.iter().step_by(stride) {
            println!("{t:.3} {z:.3}");
        }
        if let (Some(first), Some(last)) = (track.first(), track.last()) {
            let head: Vec<f64> = track.iter().take(40).map(|&(_, z)| z).collect();
            let tail: Vec<f64> = track.iter().rev().take(40).map(|&(_, z)| z).collect();
            println!(
                "# {}: span {:.1}-{:.1} s, early median z {:.2} m, final median z {:.2} m",
                activity.label(),
                first.0,
                last.0,
                witrack_dsp::stats::median(&head),
                witrack_dsp::stats::median(&tail)
            );
        }
    }
}
