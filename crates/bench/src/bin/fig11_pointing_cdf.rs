//! Fig. 11 — CDF of the pointing-direction error.
//!
//! Paper result: median orientation error 11.2°, 90th percentile 37.9°.

use witrack_bench::printing::{banner, print_cdf};
use witrack_bench::runner::{run_pointing, PointingSpec};
use witrack_bench::HarnessArgs;
use witrack_dsp::stats::EmpiricalCdf;
use witrack_geom::Vec3;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "F11",
        "pointing-direction error CDF",
        "median 11.2 degrees, 90th percentile 37.9 degrees",
    );
    let n = args.experiment_count(12, 40);
    let mut errors = Vec::new();
    let mut failures = 0;
    for i in 0..n {
        // Random stances and directions across the room, like the §9.4
        // protocol ("stand in random different locations … point in a
        // direction of their choice").
        let golden = 0.618_033_988_749_895_f64;
        let u = (i as f64 * golden) % 1.0;
        let v = (i as f64 * golden * golden) % 1.0;
        let stance = Vec3::new(-1.5 + 3.0 * u, 3.5 + 3.0 * v, 1.0);
        let az = (u - 0.5) * 2.2; // ±63° azimuth
        let el = (v - 0.3) * 0.9;
        let direction = Vec3::new(az.sin(), az.cos(), el)
            .normalized()
            .expect("unit");
        let spec = PointingSpec {
            seed: args.seed + i as u64 * 37,
            stance,
            direction,
            ..PointingSpec::default()
        };
        let out = run_pointing(&spec);
        match out.error_deg {
            Some(e) => errors.push(e),
            None => failures += 1,
        }
    }
    println!(
        "\ngestures: {n}, estimated: {}, failed to segment: {failures}",
        errors.len()
    );
    let cdf = EmpiricalCdf::new(errors);
    print_cdf("pointing_error_deg", &cdf, 21);
    println!(
        "summary: median {:.1} deg (paper 11.2), 90th {:.1} deg (paper 37.9)",
        cdf.median(),
        cdf.percentile(90.0)
    );
}
