//! t_throughput — end-to-end frames/sec of the streaming pipelines, with a
//! machine-readable `BENCH_throughput.json` artifact.
//!
//! The paper's real-time budget is one frame per 12.5 ms (80 frames/s) per
//! deployment (§7). This harness pre-generates paper-configuration sweeps
//! (so signal synthesis is excluded), then times processing alone for two
//! scenarios:
//!
//! * `single_target_3ant` — the §4+§5 [`WiTrack`] pipeline, one random
//!   walker;
//! * `multi_target_3ant_3people` — the `witrack-mtt` [`MultiWiTrack`]
//!   pipeline, three concurrent walkers.
//!
//! Each scenario also reports per-stage (range-profile / detect /
//! associate) latency p50/p99, recorded by detached `witrack-obs` stage
//! histograms attached to the pipeline under test.
//!
//! Flags: `--frames N` (frames per scenario, default 240), `--seconds S`
//! (measurement floor per scenario — recorded data is replayed in a loop
//! until both the frame count and the time floor are met, default 1.0),
//! `--seed N`, `--out PATH` (default `BENCH_throughput.json`; `-` skips
//! writing).

use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_core::{WiTrack, WiTrackConfig};
use witrack_geom::Vec3;
use witrack_mtt::{MttConfig, MultiWiTrack};
use witrack_obs::{HistoSnapshot, StageStats};
use witrack_sim::motion::{RandomWalk, Rect};
use witrack_sim::multi::{scenario, MultiSimulator};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

struct ScenarioResult {
    name: &'static str,
    frames: u64,
    elapsed_s: f64,
    /// Per-stage latency snapshots (profile, detect, associate).
    stages: [(&'static str, HistoSnapshot); 3],
}

impl ScenarioResult {
    fn fps(&self) -> f64 {
        self.frames as f64 / self.elapsed_s.max(1e-12)
    }
}

/// Snapshots an attached [`StageStats`] in JSON field order.
fn stage_snapshots(stats: &StageStats) -> [(&'static str, HistoSnapshot); 3] {
    [
        ("profile", stats.profile.snapshot()),
        ("detect", stats.detect.snapshot()),
        ("associate", stats.associate.snapshot()),
    ]
}

struct Options {
    frames: u64,
    seconds: f64,
    seed: u64,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        frames: 240,
        seconds: 1.0,
        seed: 7,
        out: Some("BENCH_throughput.json".into()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--frames" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.frames = v;
                }
            }
            "--seconds" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seconds = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
            }
            "--out" => {
                opts.out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    opts
}

/// Replays `sweeps` through `push` until at least `min_frames` frames and
/// `min_seconds` of wall clock have been consumed; returns the frame count
/// and elapsed time.
fn measure<F: FnMut(&[&[f64]]) -> bool>(
    sweeps: &[Vec<Vec<f64>>],
    min_frames: u64,
    min_seconds: f64,
    mut push: F,
) -> (u64, f64) {
    let mut frames = 0u64;
    let mut idx = 0usize;
    let start = Instant::now();
    loop {
        let refs: Vec<&[f64]> = sweeps[idx % sweeps.len()]
            .iter()
            .map(|v| v.as_slice())
            .collect();
        if push(&refs) {
            frames += 1;
            if frames >= min_frames && start.elapsed().as_secs_f64() >= min_seconds {
                break;
            }
        }
        idx += 1;
    }
    (frames, start.elapsed().as_secs_f64())
}

fn record_single(seed: u64, seconds: f64) -> Vec<Vec<Vec<f64>>> {
    let sweep = witrack_fmcw::SweepConfig::witrack();
    let array = witrack_geom::AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array,
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, seconds, 0.0, seed);
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed,
        },
        channel,
        Box::new(motion),
    );
    let mut out = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        out.push(set.per_rx);
    }
    out
}

fn record_multi(seed: u64, seconds: f64, array: &witrack_geom::AntennaArray) -> Vec<Vec<Vec<f64>>> {
    let sweep = witrack_fmcw::SweepConfig::witrack();
    let mut sim = MultiSimulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed,
        },
        Scene::witrack_lab(true),
        array.clone(),
        scenario::three_walkers(seconds),
    );
    let mut out = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        out.push(set.per_rx);
    }
    out
}

fn main() {
    let opts = parse_options();
    banner(
        "T-THROUGHPUT",
        "frames/sec of the streaming pipelines (processing only)",
        "real-time budget: 80 frames/s (one frame per 12.5 ms, §7)",
    );
    let cfg = WiTrackConfig::witrack_default();
    let sweep = cfg.sweep;
    let frame_period_s = sweep.frame_duration_s();
    // Enough recorded signal to emit the requested frames without replay
    // artifacts dominating (replay wraps if the floor demands more).
    let record_s = (opts.frames as f64 * frame_period_s).clamp(0.25, 5.0);

    let mut results = Vec::new();

    {
        let data = record_single(opts.seed, record_s);
        let mut wt = WiTrack::new(cfg).expect("valid config");
        let stats = StageStats::detached();
        wt.attach_stage_stats(stats.clone());
        let (frames, elapsed_s) = measure(&data, opts.frames, opts.seconds, |refs| {
            wt.push_sweeps(refs).is_some()
        });
        results.push(ScenarioResult {
            name: "single_target_3ant",
            frames,
            elapsed_s,
            stages: stage_snapshots(&stats),
        });
    }

    {
        let base = WiTrackConfig {
            max_round_trip_m: 30.0,
            ..cfg
        };
        let mtt_cfg = MttConfig::with_base(base);
        let mut wt = MultiWiTrack::new(mtt_cfg).expect("valid config");
        let stats = StageStats::detached();
        wt.attach_stage_stats(stats.clone());
        let data = record_multi(opts.seed, record_s, wt.array());
        let (frames, elapsed_s) = measure(&data, opts.frames, opts.seconds, |refs| {
            wt.push_sweeps(refs).is_some()
        });
        results.push(ScenarioResult {
            name: "multi_target_3ant_3people",
            frames,
            elapsed_s,
            stages: stage_snapshots(&stats),
        });
    }

    println!(
        "config: {} samples/sweep, {} sweeps/frame, 3 rx antennas, frame period {:.1} ms\n",
        sweep.samples_per_sweep(),
        sweep.sweeps_per_frame,
        frame_period_s * 1e3
    );
    for r in &results {
        println!(
            "{:<28} {:>8} frames in {:>7.3} s -> {:>9.1} frames/s ({:.1}x real time)",
            r.name,
            r.frames,
            r.elapsed_s,
            r.fps(),
            r.fps() * frame_period_s
        );
        for (stage, h) in &r.stages {
            println!(
                "{:<28}   {:>10} p50 {:>8.1} us  p99 {:>8.1} us",
                "",
                stage,
                h.p50() as f64 / 1e3,
                h.p99() as f64 / 1e3
            );
        }
    }

    if let Some(path) = &opts.out {
        let scenarios: Vec<String> = results
            .iter()
            .map(|r| {
                let stages: Vec<String> = r
                    .stages
                    .iter()
                    .map(|(stage, h)| {
                        format!(
                            "      \"{stage}_p50_ns\": {},\n      \"{stage}_p99_ns\": {}",
                            h.p50(),
                            h.p99()
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        "    {{\n",
                        "      \"name\": \"{}\",\n",
                        "      \"frames\": {},\n",
                        "      \"elapsed_s\": {:.6},\n",
                        "      \"frames_per_sec\": {:.2},\n",
                        "      \"realtime_factor\": {:.3},\n",
                        "{}\n",
                        "    }}"
                    ),
                    r.name,
                    r.frames,
                    r.elapsed_s,
                    r.fps(),
                    r.fps() * frame_period_s,
                    stages.join(",\n")
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"t_throughput\",\n",
                "  \"config\": {{\n",
                "    \"samples_per_sweep\": {},\n",
                "    \"sweeps_per_frame\": {},\n",
                "    \"num_rx\": 3,\n",
                "    \"frame_period_ms\": {:.3},\n",
                "    \"realtime_frames_per_sec\": {:.1}\n",
                "  }},\n",
                "  \"scenarios\": [\n{}\n  ]\n",
                "}}\n"
            ),
            sweep.samples_per_sweep(),
            sweep.sweeps_per_frame,
            frame_period_s * 1e3,
            1.0 / frame_period_s,
            scenarios.join(",\n")
        );
        std::fs::write(path, json).expect("write throughput JSON");
        println!("\nwrote {path}");
    }
}
