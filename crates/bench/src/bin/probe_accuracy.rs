//! Quick accuracy probe (not a paper figure): one through-wall experiment
//! at full paper configuration, printing per-axis medians.
use witrack_bench::{run_tracking, TrackingSpec};

fn main() {
    let t0 = std::time::Instant::now();
    let spec = TrackingSpec {
        duration_s: 10.0,
        seed: 3,
        ..TrackingSpec::default()
    };
    let r = run_tracking(&spec);
    let (mx, px) = r.errors.summary(0);
    let (my, py) = r.errors.summary(1);
    let (mz, pz) = r.errors.summary(2);
    println!(
        "samples {} dropout {:.3}",
        r.errors.len(),
        r.dropout_fraction
    );
    println!("x median {:.3} p90 {:.3}", mx, px);
    println!("y median {:.3} p90 {:.3}", my, py);
    println!("z median {:.3} p90 {:.3}", mz, pz);
    println!("wall time {:.1}s for 10s sim", t0.elapsed().as_secs_f64());
}
