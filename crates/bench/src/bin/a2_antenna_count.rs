//! A2 (§5 ablation) — does over-constraining with extra receive antennas
//! add robustness?
//!
//! Paper design claim: "adding more antennas would result in more
//! constraints … and hence add extra robustness to noise." We compare the
//! 3-antenna closed form against 4/5-antenna least squares at an elevated
//! noise level.

use witrack_bench::printing::{banner, cm};
use witrack_bench::{run_parallel, run_tracking, HarnessArgs, TrackingSpec};
use witrack_core::metrics::AxisErrors;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "A2",
        "3D error vs number of receive antennas (noisy regime)",
        "more antennas -> lower error via least-squares averaging",
    );
    let n = args.experiment_count(4, 20);
    let dur = args.duration_s(10.0, 60.0);
    println!("\nrx-antennas  median-3D-error  90th-3D-error");
    for extra in [0usize, 1, 2] {
        let specs: Vec<TrackingSpec> = (0..n)
            .map(|i| TrackingSpec {
                duration_s: dur,
                seed: args.seed + i as u64 * 53,
                extra_rx: extra,
                noise_std: 0.4, // elevated noise to expose the difference
                ..TrackingSpec::default()
            })
            .collect();
        let results = run_parallel(&specs, run_tracking);
        let mut errors = AxisErrors::new();
        let mut e3d = Vec::new();
        for r in &results {
            errors.merge(&r.errors);
            for s in &r.samples {
                e3d.push(s.estimate.distance(s.truth));
            }
        }
        println!(
            "{:<12} {:<16} {}",
            3 + extra,
            cm(witrack_dsp::stats::percentile(&e3d, 50.0)),
            cm(witrack_dsp::stats::percentile(&e3d, 90.0))
        );
    }
}
