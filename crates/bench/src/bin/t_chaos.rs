//! t_chaos — graceful-degradation acceptance matrix, with a
//! machine-readable `BENCH_chaos.json` artifact.
//!
//! Every cell runs the full deployment path — RF simulation → wire →
//! sharded pipelines → fusion hub → wire subscriber — through three
//! phases on one connection: a clean warmup, a fault window, and a clean
//! recovery. The fault window injects one fault class (seeded, via
//! [`FaultyTransport`]) or silences a sensor outright; the cell then
//! checks the degradation contract:
//!
//! * **zero panics** — the run completes and world frames never stop;
//! * **bounded fused error** — per-phase median 3D error against the
//!   simulator's ground truth stays under the room's bound while a
//!   walker is inside live coverage;
//! * **no identity swaps** — two crossing walkers never exchange world
//!   track ids, fault window included;
//! * **graceful shed** — faults shed frames (counted), never the
//!   session or the subscriber stream;
//! * **recovery** — time from the end of the fault window to the first
//!   epoch where every covered walker is tracked well again, reported
//!   as `recovery_to_good_ns` (floored at one frame period) and gated
//!   lower-is-better by `ci/perf_gate.py`.
//!
//! Rooms: `hallway` (12 m, two crossing walkers, multi-target
//! pipelines) and `studio` (a [`ScenarioSpec`]-built 9 m room: one
//! random walker, mild co-channel interference, 50 ppm clock drift on
//! sensor 1). Fault classes: drop, corrupt, reorder, dup_burst, stall,
//! outage.
//!
//! Flags: `--rooms a,b`, `--faults a,b,..`, `--quick` (hallway-only
//! subset, same windows — values stay gate-comparable), `--out PATH`
//! (default `BENCH_chaos.json`; `-` skips writing).

use std::f64::consts::PI;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use witrack_bench::printing::banner;
use witrack_core::fall::FallConfig;
use witrack_core::WiTrackConfig;
use witrack_fuse::{FuseConfig, Registration};
use witrack_geom::{AntennaArray, RigidTransform, Vec3};
use witrack_obs::AnomalyKind;
use witrack_serve::engine::{EngineConfig, OverloadPolicy};
use witrack_serve::factory::{hello_for, witrack_factory};
use witrack_serve::hub::WorldConfig;
use witrack_serve::transport::in_proc_pair;
use witrack_serve::wire::{Message, PipelineKind, SubscriptionStats, WorldUpdateMsg};
use witrack_serve::{
    EventKind, FaultPlan, FaultStats, FaultyTransport, SensorClient, Server, SubscriptionBuilder,
};
use witrack_sim::chaos::ScenarioSpec;
use witrack_sim::motion::LinePath;
use witrack_sim::multi::PersonSpec;
use witrack_sim::vantage::{scenario, MultiVantageSimulator};
use witrack_sim::{chaos::ChaosScenario, SimConfig};

const ROOM_ID: u32 = 1;
/// Phase windows (seconds of simulated walking, same in `--quick` so the
/// recovery values stay comparable to the checked-in baseline).
const WARMUP_S: f64 = 2.0;
const FAULT_S: f64 = 2.0;
const RECOVERY_S: f64 = 2.0;
/// Tracking settle time excluded from the clean-phase statistics.
const SETTLE_S: f64 = 0.75;
/// "Tracked" for the phase statistics: a world track this close to truth.
const TRACKED_M: f64 = 1.0;
/// A "good" recovery epoch: every covered walker within this, un-coasted.
const GOOD_M: f64 = 0.8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultClass {
    Drop,
    Corrupt,
    Reorder,
    DupBurst,
    Stall,
    Outage,
}

impl FaultClass {
    const ALL: [FaultClass; 6] = [
        FaultClass::Drop,
        FaultClass::Corrupt,
        FaultClass::Reorder,
        FaultClass::DupBurst,
        FaultClass::Stall,
        FaultClass::Outage,
    ];

    fn name(&self) -> &'static str {
        match self {
            FaultClass::Drop => "drop",
            FaultClass::Corrupt => "corrupt",
            FaultClass::Reorder => "reorder",
            FaultClass::DupBurst => "dup_burst",
            FaultClass::Stall => "stall",
            FaultClass::Outage => "outage",
        }
    }

    fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|f| f.name() == s)
    }

    /// The transport plan active during the fault window. `Outage` is a
    /// sensor failure, not a transport fault: the driver silences the
    /// sensor instead.
    fn plan(&self, seed: u64) -> FaultPlan {
        let base = FaultPlan::builder(seed);
        match self {
            FaultClass::Drop => base.drop(0.15),
            FaultClass::Corrupt => base.corrupt(0.15),
            FaultClass::Reorder => base.reorder(0.25, 4),
            FaultClass::DupBurst => base.duplicate(0.1).burst(0.05, 6),
            FaultClass::Stall => base.stall(0.02, 25),
            FaultClass::Outage => base,
        }
        .build()
    }
}

struct Options {
    rooms: Vec<String>,
    faults: Vec<FaultClass>,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut rooms = vec!["hallway".to_string(), "studio".to_string()];
    let mut faults = FaultClass::ALL.to_vec();
    let mut out = Some("BENCH_chaos.json".to_string());
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => rooms = vec!["hallway".to_string()],
            "--rooms" => {
                if let Some(v) = it.next() {
                    rooms = v.split(',').map(|s| s.trim().to_string()).collect();
                }
            }
            "--faults" => {
                if let Some(v) = it.next() {
                    faults = v
                        .split(',')
                        .filter_map(|s| FaultClass::parse(s.trim()))
                        .collect();
                }
            }
            "--out" => {
                out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    Options { rooms, faults, out }
}

fn mid_base() -> WiTrackConfig {
    WiTrackConfig {
        sweep: witrack_fmcw::SweepConfig::witrack_mid(),
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    }
}

/// The world.rs acceptance fuse tuning, plus liveness timeouts short
/// enough that an in-process outage (wall-paced ~1 ms/frame) is
/// detected and survived inside one fault window.
fn fuse_cfg(base: &WiTrackConfig) -> FuseConfig {
    FuseConfig {
        frame_period_s: base.sweep.frame_duration_s(),
        obs_std_floor_m: 0.25,
        gate_mahalanobis_sq: 25.0,
        max_uncorroborated_epochs: 150,
        coverage_margin_m: 0.25,
        min_new_track_separation_m: 2.5,
        suspect_timeout_s: 0.05,
        dead_timeout_s: 0.15,
        fall: FallConfig::default(),
        ..FuseConfig::default()
    }
}

fn registration(hallway_m: f64, coverage_m: f64) -> Registration {
    Registration::new()
        .with_sensor(0, RigidTransform::IDENTITY)
        .with_sensor(
            1,
            RigidTransform::from_yaw(PI, Vec3::new(0.0, hallway_m, 0.0)),
        )
        .with_coverage(0, coverage_m)
        .with_coverage(1, coverage_m)
}

/// One room of the matrix: a simulator (plain or [`ScenarioSpec`]-built),
/// its geometry, and its acceptance bounds.
struct Room {
    name: &'static str,
    hallway_m: f64,
    coverage_m: f64,
    kind: PipelineKind,
    humans: usize,
    /// Clean/recovery-phase median error bound (m).
    clean_bound_m: f64,
    sim: RoomSim,
}

enum RoomSim {
    Plain(MultiVantageSimulator),
    Built(ChaosScenario),
}

impl RoomSim {
    fn next_round(&mut self) -> Option<Vec<witrack_sim::RoomSweeps>> {
        match self {
            RoomSim::Plain(s) => s.next_round(),
            RoomSim::Built(s) => s.next_round(),
        }
    }

    fn sim(&self) -> &MultiVantageSimulator {
        match self {
            RoomSim::Plain(s) => s,
            RoomSim::Built(s) => s.sim(),
        }
    }
}

fn make_room(name: &str, base: &WiTrackConfig, duration_s: f64) -> Room {
    match name {
        // Two walkers crossing a 12 m hallway in opposite x-offset
        // lanes: the identity-swap bait, on multi-target pipelines.
        "hallway" => {
            let (hallway_m, coverage_m) = (12.0, 8.0);
            let a = (Vec3::new(-1.2, 2.2, 1.05), Vec3::new(-1.2, 9.8, 1.05));
            let b = (Vec3::new(1.2, 9.8, 0.95), Vec3::new(1.2, 2.2, 0.95));
            let people = vec![
                PersonSpec::adult(LinePath::new(a.0, a.1, a.0.distance(a.1) / duration_s)),
                PersonSpec::adult(LinePath::new(b.0, b.1, b.0.distance(b.1) / duration_s)),
            ];
            let sim = MultiVantageSimulator::new(
                SimConfig {
                    sweep: base.sweep,
                    noise_std: 0.05,
                    seed: 9,
                },
                AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
                scenario::facing_pair(hallway_m, coverage_m),
                people,
            );
            Room {
                name: "hallway",
                hallway_m,
                coverage_m,
                kind: PipelineKind::MultiTarget,
                humans: 2,
                clean_bound_m: 0.6,
                sim: RoomSim::Plain(sim),
            }
        }
        // A declaratively-specified 9 m room: one random walker, mild
        // co-channel interference, sensor 1's clock 50 ppm fast.
        "studio" => {
            let spec = ScenarioSpec::new("studio")
                .with_room(9.0, 6.0)
                .with_walkers(1)
                .with_interference(0.01)
                .with_clock_drift(1, 50e-6)
                .with_duration(duration_s)
                .with_seed(5);
            let built = spec.build(base.sweep, 0.05);
            Room {
                name: "studio",
                hallway_m: 9.0,
                coverage_m: 6.0,
                kind: PipelineKind::SingleTarget,
                humans: 1,
                clean_bound_m: 0.9,
                sim: RoomSim::Built(built),
            }
        }
        other => panic!("unknown room {other:?} (rooms: hallway, studio)"),
    }
}

struct CellResult {
    room: String,
    fault: FaultClass,
    frames_sent: u64,
    world_updates: usize,
    rejects: u64,
    injected: FaultStats,
    shed_frames: i64,
    clean_median_m: f64,
    fault_median_m: f64,
    recovery_median_m: f64,
    clean_tracked: f64,
    fault_updates: usize,
    identity_swaps: u64,
    nonfinite_shed: u64,
    anomalies: Vec<(AnomalyKind, u64)>,
    recovery_to_good_ns: u64,
    /// Final counters of the rate-limited fall subscription on the clean
    /// side connection (None = the unsubscribe reply never arrived).
    filter: Option<SubscriptionStats>,
    violations: Vec<String>,
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

#[allow(clippy::too_many_lines)]
fn run_cell(room_name: &str, fault: FaultClass) -> CellResult {
    let base = mid_base();
    let period = base.sweep.frame_duration_s();
    let duration_s = WARMUP_S + FAULT_S + RECOVERY_S;
    let mut room = make_room(room_name, &base, duration_s);
    let warmup_frames = (WARMUP_S / period).round() as u64;
    let fault_frames = (FAULT_S / period).round() as u64;
    let fault_start_s = warmup_frames as f64 * period;
    let fault_end_s = fault_start_s + fault_frames as f64 * period;

    let server = Server::builder(witrack_factory(base))
        .config(EngineConfig {
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
            ..Default::default()
        })
        .world(WorldConfig::single_room(
            ROOM_ID,
            fuse_cfg(&base),
            registration(room.hallway_m, room.coverage_m),
        ))
        .start();
    let (client_end, server_end) = in_proc_pair(64);
    let seed = 0xC0FFEE ^ fault as u64;
    let faulty = FaultyTransport::new(client_end, FaultPlan::none(seed));
    let plan = faulty.plan_handle();
    let counters = faulty.counters();
    server.attach(server_end).expect("attach");

    let updates: Arc<Mutex<Vec<WorldUpdateMsg>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&updates);
    let mut client = SensorClient::connect_with(
        faulty,
        Some(Box::new(move |msg: &Message| {
            if let Message::WorldUpdate(w) = msg {
                sink.lock().expect("sink poisoned").push(w.clone());
            }
        })),
    )
    .expect("connect");
    client
        .subscribe_with(SubscriptionBuilder::room(ROOM_ID).build())
        .expect("subscribe");
    // A second subscriber on its own *clean* connection, narrowed to a
    // rate-limited fall alert: the hub must keep evaluating (and
    // accounting) its filter through the fault window, and the explicit
    // unsubscribe at the end must come back with final counters — a
    // faulted fleet must never wedge an alerting subscription.
    let (alert_end, alert_server_end) = in_proc_pair(64);
    server.attach(alert_server_end).expect("attach alert");
    let mut alert_client = SensorClient::connect(alert_end).expect("connect alert");
    const ALERT_SUB: u64 = 77;
    alert_client
        .subscribe_with(
            SubscriptionBuilder::room(ROOM_ID)
                .events(EventKind::Fall)
                .rate_limit(2.0, 2)
                .world_updates(false)
                .id(ALERT_SUB)
                .build(),
        )
        .expect("subscribe alert");
    for sensor in 0..2u32 {
        client
            .hello(hello_for(&base, sensor, room.kind))
            .expect("hello");
    }

    // Drive the three phases. Frames are sent as fast as the pipelines
    // absorb them except during an outage window, where the driver paces
    // ~1 ms/frame so the hub's wall-clock liveness tick can observe the
    // silence (and the revival) inside the window.
    let sweeps_per_frame = base.sweep.sweeps_per_frame;
    let mut pending: Vec<Vec<Vec<Vec<f64>>>> = vec![Vec::new(); 2];
    let mut seq = [0u64; 2];
    let mut frame_of = [0u64; 2];
    let mut frames_sent = 0u64;
    while let Some(round) = room.sim.next_round() {
        for rs in round {
            let v = rs.sensor_id as usize;
            pending[v].push(rs.set.per_rx);
            if pending[v].len() < sweeps_per_frame {
                continue;
            }
            let f = frame_of[v];
            if v == 0 {
                if f == warmup_frames {
                    plan.set(fault.plan(seed));
                }
                if f == warmup_frames + fault_frames {
                    plan.set(FaultPlan::none(seed));
                }
            }
            let in_fault = f >= warmup_frames && f < warmup_frames + fault_frames;
            let silenced = fault == FaultClass::Outage && in_fault && v == 1;
            if !silenced {
                client
                    .send_sweeps(rs.sensor_id, seq[v], &pending[v])
                    .expect("send");
                seq[v] += 1;
                frames_sent += 1;
            }
            if fault == FaultClass::Outage && in_fault && v == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            frame_of[v] += 1;
            pending[v].clear();
        }
    }
    for sensor in 0..2u32 {
        client.teardown(sensor).expect("teardown");
    }
    let stats = client.close();
    // Release the alert subscription explicitly; the final counters must
    // come back promptly or the subscription is wedged.
    alert_client
        .unsubscribe(ROOM_ID, ALERT_SUB)
        .expect("unsubscribe alert");
    let filter_stats = {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match alert_client.last_subscription_stats() {
                Some(s) => break Some(s),
                None if std::time::Instant::now() >= deadline => break None,
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    };
    let alert_stats = alert_client.close();
    let anomalies = {
        let mut counts: Vec<(AnomalyKind, u64)> = Vec::new();
        for a in server.recorder().dump() {
            match counts.iter_mut().find(|(k, _)| *k == a.kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((a.kind, 1)),
            }
        }
        counts
    };
    let fuse_stats = server
        .registry()
        .render_text()
        .lines()
        .find_map(|l| {
            l.strip_prefix("witrack_fuse_nonfinite_observations")
                .and_then(|rest| rest.split_whitespace().next_back()?.parse().ok())
        })
        .unwrap_or(0u64);
    let metrics = server.shutdown();
    let updates = Arc::try_unwrap(updates)
        .unwrap_or_else(|_| panic!("collector still shared"))
        .into_inner()
        .expect("collector poisoned");

    // --- Evaluate the degradation contract against ground truth.
    let sim = room.sim.sim();
    let covered = |i: usize, t: f64, phase_fault: bool| {
        let s1_live = !(fault == FaultClass::Outage && phase_fault);
        sim.in_coverage(0, i, t) || (s1_live && sim.in_coverage(1, i, t))
    };
    let mut phase_errs: [Vec<f64>; 3] = Default::default();
    let mut phase_covered = [0usize; 3];
    let mut phase_tracked = [0usize; 3];
    let mut fault_updates = 0usize;
    let mut identity_swaps = 0u64;
    let mut prev_assign: Option<Vec<witrack_fuse::WorldTrackId>> = None;
    let mut recovery_to_good_s: Option<f64> = None;
    for u in &updates {
        let t = u.frame.time_s;
        if t < SETTLE_S {
            continue;
        }
        let phase = if t < fault_start_s {
            0
        } else if t < fault_end_s {
            1
        } else {
            2
        };
        if phase == 1 {
            fault_updates += 1;
        }
        let mut assign = Vec::with_capacity(room.humans);
        let mut all_good = true;
        for i in 0..room.humans {
            let truth = sim.true_state(i, t).center;
            if !covered(i, t, phase == 1) {
                continue;
            }
            phase_covered[phase] += 1;
            let nearest = u.frame.tracks.iter().min_by(|x, y| {
                x.position
                    .distance(truth)
                    .partial_cmp(&y.position.distance(truth))
                    .expect("finite")
            });
            match nearest {
                Some(track) if track.position.distance(truth) < TRACKED_M => {
                    phase_tracked[phase] += 1;
                    phase_errs[phase].push(track.position.distance(truth));
                    if track.position.distance(truth) >= GOOD_M || track.coasting {
                        all_good = false;
                    }
                    assign.push(track.id);
                }
                _ => {
                    all_good = false;
                }
            }
        }
        // An identity swap: the per-walker nearest-track assignment
        // inverts between consecutive fully-assigned epochs. (Distinct
        // x lanes keep nearest-truth assignment unambiguous.)
        if assign.len() == room.humans && room.humans == 2 {
            if let Some(prev) = &prev_assign {
                if assign[0] == prev[1] && assign[1] == prev[0] && assign[0] != assign[1] {
                    identity_swaps += 1;
                }
            }
            prev_assign = Some(assign);
        }
        if phase == 2 && recovery_to_good_s.is_none() && all_good && phase_covered[2] > 0 {
            recovery_to_good_s = Some(t - fault_end_s);
        }
    }
    let clean_median_m = median(&mut phase_errs[0]);
    let fault_median_m = median(&mut phase_errs[1]);
    let recovery_median_m = median(&mut phase_errs[2]);
    let clean_tracked = phase_tracked[0] as f64 / phase_covered[0].max(1) as f64;
    let recovery_tracked = phase_tracked[2] as f64 / phase_covered[2].max(1) as f64;
    let recovery_to_good_ns =
        ((recovery_to_good_s.unwrap_or(f64::NAN) * 1e9).max(period * 1e9)) as u64;
    let injected = counters.snapshot();
    let shed_frames = frames_sent as i64 - metrics.frames_emitted as i64;

    // --- Acceptance.
    let mut violations = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            violations.push(msg);
        }
    };
    check(
        recovery_to_good_s.is_some(),
        format!("never recovered within {RECOVERY_S} s of the fault window closing"),
    );
    check(
        clean_median_m < room.clean_bound_m,
        format!(
            "clean median {clean_median_m:.2} m ≥ bound {:.2} m",
            room.clean_bound_m
        ),
    );
    check(
        recovery_median_m < room.clean_bound_m * 1.5,
        format!(
            "recovery median {recovery_median_m:.2} m ≥ {:.2} m",
            room.clean_bound_m * 1.5
        ),
    );
    check(
        fault_median_m.is_nan() || fault_median_m < 3.0,
        format!("fault-window median {fault_median_m:.2} m ≥ 3.0 m"),
    );
    check(
        clean_tracked > 0.7,
        format!(
            "clean phase tracked only {:.0}% of covered epochs",
            clean_tracked * 100.0
        ),
    );
    check(
        recovery_tracked > 0.5,
        format!(
            "recovery phase tracked only {:.0}% of covered epochs",
            recovery_tracked * 100.0
        ),
    );
    check(
        identity_swaps == 0,
        format!("{identity_swaps} identity swaps"),
    );
    check(
        fault_updates > 0,
        "world stream collapsed during the fault window".to_string(),
    );
    check(
        filter_stats.is_some(),
        "fall-alert subscription wedged: no final stats within 5 s of unsubscribe".to_string(),
    );
    if let Some(f) = filter_stats {
        check(
            f.matched <= f.evaluated && f.shed <= f.matched && f.sub_id == ALERT_SUB,
            format!("fall-alert counters inconsistent: {f:?}"),
        );
    }
    check(
        alert_stats.rejects == 0,
        format!("fall-alert connection drew {} rejects", alert_stats.rejects),
    );
    match fault {
        FaultClass::Drop => check(injected.dropped > 0, "no drops injected".into()),
        FaultClass::Corrupt => check(injected.corrupted > 0, "no corruption injected".into()),
        FaultClass::Reorder => check(injected.reordered > 0, "no reorders injected".into()),
        FaultClass::DupBurst => check(
            injected.duplicated > 0 && injected.bursts > 0,
            "no duplicates/bursts injected".into(),
        ),
        FaultClass::Stall => check(injected.stalls > 0, "no stalls injected".into()),
        FaultClass::Outage => {
            let has = |k: AnomalyKind| anomalies.iter().any(|(kind, _)| *kind == k);
            check(
                has(AnomalyKind::SensorDead) && has(AnomalyKind::SensorRecovered),
                "outage not observed by the liveness model".into(),
            );
        }
    }

    CellResult {
        room: room.name.to_string(),
        fault,
        frames_sent,
        world_updates: updates.len(),
        rejects: stats.rejects,
        injected,
        shed_frames,
        clean_median_m,
        fault_median_m,
        recovery_median_m,
        clean_tracked,
        fault_updates,
        identity_swaps,
        nonfinite_shed: fuse_stats,
        anomalies,
        recovery_to_good_ns,
        filter: filter_stats,
        violations,
    }
}

fn main() {
    let opts = parse_options();
    banner(
        "t_chaos",
        "transport fault + sensor failure degradation matrix",
        "beyond the paper: the §7 streaming pipeline under loss, corruption, and dead sensors",
    );
    println!(
        "{:>8} {:>9} {:>7} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6} {:>12}",
        "room",
        "fault",
        "frames",
        "updates",
        "rejects",
        "clean m",
        "fault m",
        "recov m",
        "swaps",
        "shed",
        "recovery ms"
    );
    let mut cells = Vec::new();
    let mut failed = false;
    for room in &opts.rooms {
        for &fault in &opts.faults {
            let cell = run_cell(room, fault);
            println!(
                "{:>8} {:>9} {:>7} {:>8} {:>8} {:>7.2} {:>7.2} {:>7.2} {:>6} {:>6} {:>12.1}",
                cell.room,
                cell.fault.name(),
                cell.frames_sent,
                cell.world_updates,
                cell.rejects,
                cell.clean_median_m,
                cell.fault_median_m,
                cell.recovery_median_m,
                cell.identity_swaps,
                cell.shed_frames,
                cell.recovery_to_good_ns as f64 / 1e6,
            );
            for v in &cell.violations {
                failed = true;
                println!("          FAIL: {v}");
            }
            cells.push(cell);
        }
    }
    println!(
        "\n(fault window: {FAULT_S} s of {} fps walking; chaos injected: {})",
        (1.0 / mid_base().sweep.frame_duration_s()).round(),
        cells
            .iter()
            .map(|c| {
                let i = c.injected;
                i.dropped + i.duplicated + i.reordered + i.corrupted + i.stalls + i.bursts
            })
            .sum::<u64>()
    );

    if let Some(path) = opts.out {
        let mut rows = Vec::new();
        for c in &cells {
            let anomalies = c
                .anomalies
                .iter()
                .map(|(k, n)| format!("\"{k:?}\": {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            rows.push(format!(
                concat!(
                    "    {{\"room\": \"{}\", \"fault\": \"{}\", \"frames_sent\": {}, ",
                    "\"world_updates\": {}, \"rejects\": {}, \"shed_frames\": {}, ",
                    "\"injected_dropped\": {}, \"injected_duplicated\": {}, ",
                    "\"injected_reordered\": {}, \"injected_corrupted\": {}, ",
                    "\"injected_stalls\": {}, \"injected_bursts\": {}, ",
                    "\"clean_median_m\": {:.3}, \"fault_median_m\": {:.3}, ",
                    "\"recovery_median_m\": {:.3}, \"clean_tracked_frac\": {:.3}, ",
                    "\"fault_window_updates\": {}, \"identity_swaps\": {}, ",
                    "\"nonfinite_observations_shed\": {}, ",
                    "\"anomalies\": {{{}}}, ",
                    "\"filter_evaluated\": {}, \"filter_matched\": {}, ",
                    "\"filter_shed\": {}, \"filter_rate_limited\": {}, ",
                    "\"passed\": {}, \"recovery_to_good_ns\": {}}}"
                ),
                c.room,
                c.fault.name(),
                c.frames_sent,
                c.world_updates,
                c.rejects,
                c.shed_frames,
                c.injected.dropped,
                c.injected.duplicated,
                c.injected.reordered,
                c.injected.corrupted,
                c.injected.stalls,
                c.injected.bursts,
                c.clean_median_m,
                c.fault_median_m,
                c.recovery_median_m,
                c.clean_tracked,
                c.fault_updates,
                c.identity_swaps,
                c.nonfinite_shed,
                anomalies,
                c.filter.unwrap_or_default().evaluated,
                c.filter.unwrap_or_default().matched,
                c.filter.unwrap_or_default().shed,
                c.filter.unwrap_or_default().rate_limited,
                c.violations.is_empty(),
                c.recovery_to_good_ns
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"t_chaos\",\n  \"frame_period_s\": {},\n  \
             \"windows_s\": [{WARMUP_S}, {FAULT_S}, {RECOVERY_S}],\n  \
             \"results\": [\n{}\n  ]\n}}\n",
            mid_base().sweep.frame_duration_s(),
            rows.join(",\n")
        );
        std::fs::write(&path, json).expect("write artifact");
        println!("wrote {path}");
    }

    if failed {
        eprintln!("t_chaos: FAIL — degradation contract violated (see FAIL lines)");
        std::process::exit(1);
    }
    println!("t_chaos: all cells passed the degradation contract");
}
