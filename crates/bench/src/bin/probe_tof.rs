//! TOF-stage diagnostic: per-antenna raw detection and denoised errors.
use witrack_core::{WiTrack, WiTrackConfig};
use witrack_sim::motion::{RandomWalk, Rect};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let sweep = witrack_fmcw::SweepConfig::witrack();
    let cfg = WiTrackConfig {
        sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut wt = WiTrack::new(cfg).unwrap();
    let array = wt.array().clone();
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 10.0, 0.25, 3);
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: array.clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 3,
        },
        channel,
        Box::new(motion),
    );
    let mut raw_errs: Vec<Vec<f64>> = vec![vec![]; 3];
    let mut den_errs: Vec<Vec<f64>> = vec![vec![]; 3];
    let mut miss = [0usize; 3];
    let mut frames = 0usize;
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(u) = wt.push_sweeps(&refs) {
            if u.time_s < 2.0 {
                continue;
            }
            frames += 1;
            let truth = sim.surface_truth(u.time_s);
            for k in 0..3 {
                let rt_true = array.round_trip(truth, k);
                match u.frames[k].detection {
                    Some(d) => raw_errs[k].push((d.round_trip_m - rt_true).abs()),
                    None => miss[k] += 1,
                }
                if let Some(d) = u.round_trips[k] {
                    den_errs[k].push((d - rt_true).abs());
                }
            }
        }
    }
    for k in 0..3 {
        let med = witrack_dsp::stats::median(&raw_errs[k]);
        let p90 = witrack_dsp::stats::percentile(&raw_errs[k], 90.0);
        let dmed = witrack_dsp::stats::median(&den_errs[k]);
        let dp90 = witrack_dsp::stats::percentile(&den_errs[k], 90.0);
        let gross = raw_errs[k].iter().filter(|&&e| e > 0.5).count();
        println!("rx{k}: raw med {med:.3} p90 {p90:.3} | denoised med {dmed:.3} p90 {dp90:.3} | miss {}/{frames} gross {gross}", miss[k]);
    }
}
