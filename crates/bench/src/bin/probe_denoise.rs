//! Frame-level dump around denoiser failures.
use witrack_core::{WiTrack, WiTrackConfig};
use witrack_sim::motion::{RandomWalk, Rect};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let sweep = witrack_fmcw::SweepConfig::witrack();
    let cfg = WiTrackConfig {
        sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut wt = WiTrack::new(cfg).unwrap();
    let array = wt.array().clone();
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 10.0, 0.25, 3);
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: array.clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 3,
        },
        channel,
        Box::new(motion),
    );
    let mut rows = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(u) = wt.push_sweeps(&refs) {
            if u.time_s < 2.0 {
                continue;
            }
            let truth = sim.surface_truth(u.time_s);
            let moving = sim.true_state(u.time_s).moving;
            let rt_true = array.round_trip(truth, 0);
            let raw = u.frames[0].detection.map(|d| d.round_trip_m);
            let den = u.round_trips[0];
            let held = u.frames[0].denoised.map(|d| d.held).unwrap_or(false);
            rows.push((u.time_s, rt_true, raw, den, held, moving));
        }
    }
    // Find worst denoised error and print surrounding frames.
    let mut worst_i = 0;
    let mut worst = 0.0;
    for (i, r) in rows.iter().enumerate() {
        if let Some(d) = r.3 {
            let e = (d - r.1).abs();
            if e > worst {
                worst = e;
                worst_i = i;
            }
        }
    }
    println!("worst denoised err {worst:.3} at t={:.3}", rows[worst_i].0);
    let lo = worst_i.saturating_sub(15);
    for r in &rows[lo..(worst_i + 10).min(rows.len())] {
        println!(
            "t={:.3} true={:.3} raw={:?} den={:?} held={} moving={}",
            r.0,
            r.1,
            r.2.map(|v| (v * 1000.0).round() / 1000.0),
            r.3.map(|v| (v * 1000.0).round() / 1000.0),
            r.4,
            r.5
        );
    }
}
