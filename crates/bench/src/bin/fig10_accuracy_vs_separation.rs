//! Fig. 10 — localization error vs antenna separation (through-wall).
//!
//! Paper result: accuracy improves monotonically as the Tx–Rx separation
//! grows from 25 cm to 2 m; at 25 cm the medians are still ≤ 17 / 12 / 31 cm
//! (x/y/z) with 90th percentiles 64 / 35 / 116 cm.

use witrack_bench::printing::{banner, print_median_p90_series};
use witrack_bench::{run_parallel, run_tracking, HarnessArgs, TrackingSpec};
use witrack_core::metrics::AxisErrors;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "F10",
        "accuracy vs antenna separation, through-wall",
        "error shrinks monotonically from 0.25 m to 2 m separation (ellipsoids get squashed)",
    );
    let separations = [0.25, 0.5, 1.0, 1.5, 2.0];
    let n = args.experiment_count(4, 20);
    let dur = args.duration_s(12.0, 60.0);

    let mut per_axis_rows: [Vec<(f64, f64, f64)>; 3] = Default::default();
    for &sep in &separations {
        let specs: Vec<TrackingSpec> = (0..n)
            .map(|i| TrackingSpec {
                duration_s: dur,
                separation: sep,
                seed: args.seed + i as u64 * 89 + (sep * 1000.0) as u64,
                subject_scale: 0.85 + 0.3 * ((i % 11) as f64 / 10.0),
                ..TrackingSpec::default()
            })
            .collect();
        let results = run_parallel(&specs, run_tracking);
        let mut errors = AxisErrors::new();
        for r in &results {
            errors.merge(&r.errors);
        }
        for (axis, rows) in per_axis_rows.iter_mut().enumerate() {
            let (med, p90) = errors.summary(axis);
            rows.push((sep, med, p90));
        }
    }
    for (axis, label) in [(0usize, "x"), (1, "y"), (2, "z")] {
        println!("\n# Fig 10({label}) — {label}-axis error vs antenna separation");
        print_median_p90_series("separation_m median_m p90_m", &per_axis_rows[axis]);
    }
}
