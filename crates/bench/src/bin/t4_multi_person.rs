//! T4 (beyond the paper) — multi-person tracking with `witrack-mtt`.
//!
//! The paper's §10 names multi-person tracking as future work; this harness
//! measures what the `witrack-mtt` subsystem delivers on three scripted
//! scenarios: two walkers whose floor paths cross (radially separated),
//! two walkers passing each other radially (contours merge and the tracker
//! must coast through), and three concurrent walkers. Reported per
//! scenario: confirmed-track coverage of each true person, median 3D error
//! over covered frames, and identity swaps while people are ≥ 1 m apart.
//!
//! Quick mode runs the mid sweep (0.44 m bins); `--paper` runs the
//! prototype sweep (0.177 m bins, ~10× slower).

use witrack_bench::printing::{banner, cm};
use witrack_bench::HarnessArgs;
use witrack_dsp::stats::median;
use witrack_fmcw::SweepConfig;
use witrack_geom::Vec3;
use witrack_mtt::{MttConfig, MultiWiTrack, TrackId};
use witrack_sim::multi::{scenario, MultiSimulator, PersonSpec};
use witrack_sim::{Scene, SimConfig};

struct ScenarioReport {
    name: &'static str,
    num_people: usize,
    /// Per-person: fraction of post-warmup frames covered by a confirmed
    /// track within 1 m, and the 3D errors over covered frames.
    coverage: Vec<f64>,
    errors: Vec<Vec<f64>>,
    identity_swaps: usize,
    mean_established: f64,
}

const WARMUP_S: f64 = 2.0;
/// A person is "covered" when a confirmed/coasting track is within this.
const COVER_RADIUS_M: f64 = 1.0;

fn run_scenario(
    name: &'static str,
    people: Vec<PersonSpec>,
    sweep: SweepConfig,
    seed: u64,
    through_wall: bool,
) -> ScenarioReport {
    let base = witrack_core::WiTrackConfig {
        sweep,
        max_round_trip_m: 40.0,
        ..witrack_core::WiTrackConfig::witrack_default()
    };
    let cfg = MttConfig::with_base(base);
    let mut wt = MultiWiTrack::new(cfg).expect("valid config");
    let n_people = people.len();
    let mut sim = MultiSimulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed,
        },
        Scene::witrack_lab(through_wall),
        wt.array().clone(),
        people,
    );

    let mut covered = vec![0usize; n_people];
    let mut frames = 0usize;
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); n_people];
    // Last track id covering each person while everyone was ≥ 1 m apart.
    let mut last_id: Vec<Option<TrackId>> = vec![None; n_people];
    let mut swaps = 0usize;
    let mut established_sum = 0usize;

    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        let Some(update) = wt.push_sweeps(&refs) else {
            continue;
        };
        if update.time_s < WARMUP_S {
            continue;
        }
        frames += 1;
        let truths: Vec<Vec3> = (0..n_people)
            .map(|i| sim.surface_truth(i, update.time_s))
            .collect();
        let est: Vec<_> = update.established().collect();
        established_sum += est.len();
        let separated = (0..n_people)
            .all(|i| (0..n_people).all(|j| i == j || truths[i].distance(truths[j]) >= 1.0));
        for (i, truth) in truths.iter().enumerate() {
            let nearest = est
                .iter()
                .min_by(|a, b| {
                    let da = a.position.distance(*truth);
                    let db = b.position.distance(*truth);
                    da.partial_cmp(&db).expect("finite")
                })
                .filter(|t| t.position.distance(*truth) < COVER_RADIUS_M);
            if let Some(t) = nearest {
                covered[i] += 1;
                errors[i].push(t.position.distance(*truth));
                if separated {
                    if let Some(prev) = last_id[i] {
                        if prev != t.id {
                            swaps += 1;
                        }
                    }
                    last_id[i] = Some(t.id);
                }
            }
        }
    }

    ScenarioReport {
        name,
        num_people: n_people,
        coverage: covered
            .iter()
            .map(|&c| c as f64 / frames.max(1) as f64)
            .collect(),
        errors,
        identity_swaps: swaps,
        mean_established: established_sum as f64 / frames.max(1) as f64,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "T4",
        "multi-person tracking (witrack-mtt over scripted walker scenes)",
        "beyond the paper: section 10 names multi-person as future work",
    );
    let sweep = if args.paper_scale {
        SweepConfig::witrack()
    } else {
        SweepConfig::witrack_mid()
    };
    let dur = args.duration_s(10.0, 20.0);

    let scenarios: Vec<(&'static str, Vec<PersonSpec>, bool)> = vec![
        (
            "two_crossing_los",
            scenario::two_walker_crossing(dur),
            false,
        ),
        (
            "two_crossing_wall",
            scenario::two_walker_crossing(dur),
            true,
        ),
        (
            "two_radial_pass",
            scenario::two_walker_radial_pass(dur),
            false,
        ),
        ("three_walkers", scenario::three_walkers(dur), false),
    ];

    println!(
        "\nsweep: {:.0} MHz bandwidth ({:.2} m bins), {} s per scenario\n",
        sweep.bandwidth_hz / 1e6,
        sweep.round_trip_per_bin(),
        dur
    );
    println!("scenario             person  coverage  median-3D-err  swaps  mean-tracks");
    for (name, people, through_wall) in scenarios {
        let r = run_scenario(name, people, sweep, args.seed, through_wall);
        for i in 0..r.num_people {
            let med = if r.errors[i].is_empty() {
                "     -".to_string()
            } else {
                format!("{:>9}", cm(median(&r.errors[i])))
            };
            let tail = if i == 0 {
                format!("  {:>5}  {:>11.2}", r.identity_swaps, r.mean_established)
            } else {
                String::new()
            };
            println!(
                "{:<20} {:>6}  {:>7.1}%  {:>12}{}",
                if i == 0 { r.name } else { "" },
                i,
                r.coverage[i] * 100.0,
                med,
                tail,
            );
        }
    }
    println!("\ncoverage: fraction of frames a confirmed track is within 1 m of the person");
    println!("swaps: identity changes while all people are >= 1 m apart (target: 0)");
}
