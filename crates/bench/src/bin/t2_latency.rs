//! T2 (§7, §4.1) — real-time budget and resolution identities.
//!
//! Paper claims: the software pipeline outputs a 3D location within 75 ms of
//! the antennas receiving the signal; resolution C/2B = 8.8 cm; sweeps are
//! 2.5 ms at 0.75 mW. Here we measure the per-frame processing latency of
//! this implementation (which must fit inside the 12.5 ms frame period to
//! keep up in real time) and print the configuration identities.

use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_core::{WiTrack, WiTrackConfig};
use witrack_sim::motion::{RandomWalk, Rect};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    banner(
        "T2",
        "real-time latency + FMCW resolution identities",
        "3D output within 75 ms of reception; resolution C/2B = 8.8 cm",
    );
    let cfg = WiTrackConfig::witrack_default();
    let sweep = cfg.sweep;
    println!(
        "sweep duration        {:.1} ms",
        sweep.sweep_duration_s * 1e3
    );
    println!(
        "swept bandwidth       {:.2} GHz ({:.2} -> {:.2} GHz)",
        sweep.bandwidth_hz / 1e9,
        sweep.start_freq_hz / 1e9,
        sweep.end_freq_hz() / 1e9
    );
    println!(
        "transmit power        {:.2} mW",
        sweep.transmit_power_w * 1e3
    );
    println!(
        "range resolution      {:.1} cm (paper: 8.8 cm)",
        sweep.range_resolution() * 100.0
    );
    println!(
        "frame period          {:.1} ms ({} sweeps)",
        sweep.frame_duration_s() * 1e3,
        sweep.sweeps_per_frame
    );

    // Pre-generate 2 s of sweeps, then time the processing alone.
    let mut wt = WiTrack::new(cfg).expect("valid config");
    let array = wt.array().clone();
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array,
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 2.0, 0.0, 7);
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 7,
        },
        channel,
        Box::new(motion),
    );
    let mut sweeps = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        sweeps.push(set.per_rx);
    }

    let mut frame_latencies = Vec::new();
    let mut frame_t0 = Instant::now();
    for per_rx in &sweeps {
        let refs: Vec<&[f64]> = per_rx.iter().map(|v| v.as_slice()).collect();
        if wt.push_sweeps(&refs).is_some() {
            frame_latencies.push(frame_t0.elapsed().as_secs_f64() * 1e3);
            frame_t0 = Instant::now();
        }
    }
    // Drop the first frame (cold caches / lazy FFT planning noise).
    if frame_latencies.len() > 1 {
        frame_latencies.remove(0);
    }
    let med = witrack_dsp::stats::median(&frame_latencies);
    let p99 = witrack_dsp::stats::percentile(&frame_latencies, 99.0);
    let max = frame_latencies.iter().cloned().fold(0.0_f64, f64::max);
    println!("\nper-frame processing latency over {} frames (3 antennas, FFT->contour->denoise->3D solve):", frame_latencies.len());
    println!("  median {med:.3} ms | p99 {p99:.3} ms | max {max:.3} ms");
    println!(
        "  frame budget 12.5 ms: {}",
        if p99 < 12.5 {
            "MET (real-time)"
        } else {
            "MISSED"
        }
    );
    println!(
        "  paper's 75 ms output bound: {}",
        if max < 75.0 { "MET" } else { "MISSED" }
    );
}
