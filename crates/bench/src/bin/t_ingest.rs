//! t_ingest — the ingest data plane in isolation: wire decode + shard
//! dispatch, with the tracking pipeline stubbed out.
//!
//! Four variants, crossing the wire form with the buffer strategy:
//!
//! * **f64 / owned** — classic `SweepBatch`, decoded into a fresh
//!   `Vec<f64>` per message (the pre-pool behavior);
//! * **f64 / pooled** — `wire::decode_into` into recycled buffers;
//! * **i16 / owned** — quantized `SweepBatchQ`, decoded owned then
//!   dequantized into a fresh vector;
//! * **i16 / pooled** — quantized, dequantized straight into recycled
//!   buffers: the production hot path (zero allocations per message).
//!
//! Each variant drives a real single-shard engine (so dispatch, queueing,
//! sequence accounting, and buffer hand-off are all in the measured
//! path) whose pipeline consumes sweeps without processing them.
//! Reported: messages/s, wire MB/s, and million samples/s.
//!
//! Flags: `--frames N` (messages per variant, default 512), `--seed N`,
//! `--out PATH` (JSON artifact; default none).

use std::sync::Arc;
use std::time::Instant;
use witrack_bench::printing::banner;
use witrack_core::{FramePipeline, FrameReport, WiTrackConfig};
use witrack_serve::engine::{EngineConfig, EngineHandle, OverloadPolicy, ShardedEngine};
use witrack_serve::pool::{BatchSamples, PooledBatch};
use witrack_serve::wire::{
    self, DecodedMsg, Hello, Message, PipelineKind, SweepBatch, SweepBatchQ,
};
use witrack_sim::{FleetConfig, FleetSimulator, SimConfig};

/// Consumes sweeps without touching the heap: the bench measures the
/// serving layer's decode + dispatch, not the tracker.
struct NullPipeline {
    n_rx: usize,
}

impl FramePipeline for NullPipeline {
    fn num_rx(&self) -> usize {
        self.n_rx
    }

    fn process_sweeps(&mut self, _per_rx: &[&[f64]]) -> Option<FrameReport> {
        None
    }

    fn process_sweeps_flat(&mut self, flat: &[f64], samples: usize) -> Option<FrameReport> {
        debug_assert_eq!(flat.len(), samples * self.n_rx);
        None
    }

    fn reset(&mut self) {}
}

struct Options {
    frames: u64,
    seed: u64,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        frames: 512,
        seed: 7,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--frames" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.frames = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
            }
            "--out" => {
                opts.out = it.next().filter(|s| s != "-");
            }
            _ => {}
        }
    }
    opts
}

fn stub_engine() -> (ShardedEngine, EngineHandle) {
    let (engine, events) = ShardedEngine::start(
        EngineConfig {
            num_shards: 1,
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
        },
        Arc::new(|h: &Hello| {
            Ok(Box::new(NullPipeline {
                n_rx: h.n_rx as usize,
            }) as Box<dyn FramePipeline>)
        }),
    );
    // Nothing interesting flows on the event stream here (no sinks, no
    // reports); park a drainer so the unbounded channel stays empty.
    std::thread::spawn(move || for _ in events {});
    let handle = engine.handle();
    (engine, handle)
}

struct VariantResult {
    name: &'static str,
    bytes_per_frame: usize,
    elapsed_s: f64,
    frames: u64,
    samples_per_frame: usize,
}

impl VariantResult {
    fn msgs_per_sec(&self) -> f64 {
        self.frames as f64 / self.elapsed_s.max(1e-12)
    }

    fn wire_mb_per_sec(&self) -> f64 {
        self.msgs_per_sec() * self.bytes_per_frame as f64 / 1e6
    }

    fn msamples_per_sec(&self) -> f64 {
        self.msgs_per_sec() * self.samples_per_frame as f64 / 1e6
    }
}

/// Runs one variant: decode each pre-encoded frame with `decode_step`
/// and dispatch the result into a fresh stub engine.
fn run_variant(
    name: &'static str,
    frames: &[Vec<u8>],
    hello: Hello,
    samples_per_frame: usize,
    mut decode_step: impl FnMut(&EngineHandle, &[u8]),
) -> VariantResult {
    let (engine, handle) = stub_engine();
    handle.submit(Message::Hello(hello)).expect("hello");
    let bytes_per_frame = frames[0].len();
    let n = frames.len() as u64;
    let start = Instant::now();
    for frame in frames.iter() {
        decode_step(&handle, frame);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let m = engine.shutdown();
    assert_eq!(
        m.sweeps_processed,
        n * hello.sweeps_per_frame as u64,
        "{name}: every sweep must have reached the pipeline"
    );
    assert_eq!(m.batches_rejected, 0, "{name}: protocol-clean workload");
    VariantResult {
        name,
        bytes_per_frame,
        elapsed_s,
        frames: n,
        samples_per_frame,
    }
}

fn main() {
    let opts = parse_options();
    banner(
        "T-INGEST",
        "wire decode + shard dispatch in isolation (pipeline stubbed)",
        "f64 vs quantized i16 wire, owned vs pooled buffers",
    );
    let base = WiTrackConfig::witrack_default();
    let sweeps = base.sweep.sweeps_per_frame;
    let samples = base.sweep.samples_per_sweep();
    let samples_per_frame = sweeps * 3 * samples;

    // One room of real fleet signal, replayed cyclically with patched
    // sequence numbers — every encoded frame is distinct, pre-built, and
    // never cloned in the measured loop (sequence patching is a 12-byte
    // in-place write).
    let source_frames = 32.min(opts.frames as usize).max(1);
    let fleet = FleetSimulator::new(FleetConfig {
        rooms: 1,
        max_walkers_per_room: 1,
        duration_s: (source_frames as f64 + 1.0) * base.sweep.frame_duration_s(),
        sim: SimConfig {
            sweep: base.sweep,
            noise_std: 0.05,
            seed: opts.seed,
        },
    });
    let mut room = fleet.record_frames_flat(sweeps);
    let room = {
        room[0].truncate(source_frames);
        &room[0]
    };
    let batch_for = |seq: u64| SweepBatch {
        sensor_id: 0,
        seq,
        n_sweeps: sweeps as u16,
        n_rx: 3,
        samples_per_sweep: samples as u32,
        data: room[seq as usize % room.len()].clone(),
    };
    eprintln!(
        "encoding {} frames per wire ({} samples each)...",
        opts.frames, samples_per_frame
    );
    let f64_frames: Vec<Vec<u8>> = (0..opts.frames)
        .map(|seq| wire::encode(&Message::SweepBatch(batch_for(seq))))
        .collect();
    let i16_frames: Vec<Vec<u8>> = (0..opts.frames)
        .map(|seq| {
            wire::encode(&Message::SweepBatchQ(SweepBatchQ::quantize(&batch_for(
                seq,
            ))))
        })
        .collect();

    let hello = Hello {
        sensor_id: 0,
        kind: PipelineKind::SingleTarget,
        n_rx: 3,
        samples_per_sweep: samples as u32,
        sweeps_per_frame: sweeps as u32,
        quantized: false,
    };
    let hello_q = Hello {
        quantized: true,
        ..hello
    };

    let results = vec![
        run_variant(
            "f64/owned",
            &f64_frames,
            hello,
            samples_per_frame,
            owned_step,
        ),
        run_variant(
            "f64/pooled",
            &f64_frames,
            hello,
            samples_per_frame,
            pooled_step,
        ),
        run_variant(
            "i16/owned",
            &i16_frames,
            hello_q,
            samples_per_frame,
            owned_step,
        ),
        run_variant(
            "i16/pooled",
            &i16_frames,
            hello_q,
            samples_per_frame,
            pooled_step,
        ),
    ];

    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "variant", "bytes/frame", "msgs/s", "wire MB/s", "Msamples/s"
    );
    for r in &results {
        println!(
            "{:>12} {:>12} {:>12.0} {:>12.1} {:>12.1}",
            r.name,
            r.bytes_per_frame,
            r.msgs_per_sec(),
            r.wire_mb_per_sec(),
            r.msamples_per_sec()
        );
    }
    let by_name = |n: &str| results.iter().find(|r| r.name == n).expect("variant ran");
    println!(
        "\nbandwidth cut (f64 -> i16): {:.1}%  |  decode+dispatch speedup \
         (f64/owned -> i16/pooled): {:.2}x",
        100.0
            * (1.0
                - by_name("i16/pooled").bytes_per_frame as f64
                    / by_name("f64/owned").bytes_per_frame as f64),
        by_name("i16/pooled").msgs_per_sec() / by_name("f64/owned").msgs_per_sec()
    );

    if let Some(path) = &opts.out {
        let cells: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"variant\": \"{}\",\n",
                        "      \"bytes_per_frame\": {},\n",
                        "      \"frames\": {},\n",
                        "      \"elapsed_s\": {:.6},\n",
                        "      \"msgs_per_sec\": {:.1},\n",
                        "      \"wire_mb_per_sec\": {:.2},\n",
                        "      \"msamples_per_sec\": {:.2}\n",
                        "    }}"
                    ),
                    r.name,
                    r.bytes_per_frame,
                    r.frames,
                    r.elapsed_s,
                    r.msgs_per_sec(),
                    r.wire_mb_per_sec(),
                    r.msamples_per_sec()
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"t_ingest\",\n  \"results\": [\n{}\n  ]\n}}\n",
            cells.join(",\n")
        );
        std::fs::write(path, json).expect("write ingest JSON");
        println!("wrote {path}");
    }
}

/// The owned (pre-pool) decode step: fresh `Vec` per message, quantized
/// batches dequantized into another fresh `Vec`.
fn owned_step(handle: &EngineHandle, frame: &[u8]) {
    let (msg, _) = wire::decode(frame).expect("decode");
    match msg {
        Message::SweepBatch(b) => {
            handle
                .submit_batch_pooled(PooledBatch::from_owned(b), None)
                .expect("submit");
        }
        Message::SweepBatchQ(q) => {
            handle
                .submit_batch_pooled(PooledBatch::from_owned_q(q), None)
                .expect("submit");
        }
        other => panic!("unexpected message {other:?}"),
    }
}

/// The pooled decode step: `decode_into` a recycled buffer, dispatch the
/// pooled batch — the production hot path.
fn pooled_step(handle: &EngineHandle, frame: &[u8]) {
    let mut samples = handle.sample_pool().get(0);
    let (decoded, _) = wire::decode_into(frame, &mut samples).expect("decode");
    match decoded {
        DecodedMsg::Sweeps(shape) => {
            handle
                .submit_batch_pooled(
                    PooledBatch {
                        shape,
                        samples: BatchSamples::F64(samples),
                    },
                    None,
                )
                .expect("submit");
        }
        DecodedMsg::Other(other) => panic!("unexpected message {other:?}"),
    }
}
