//! Figure-style terminal output shared by the harness binaries.

use witrack_dsp::stats::EmpiricalCdf;

/// Prints a figure/table banner with the paper reference.
pub fn banner(id: &str, title: &str, paper_says: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_says}");
    println!("==================================================================");
}

/// Prints an empirical CDF as `value fraction` rows (gnuplot-ready), plus
/// the median and 90th percentile the paper quotes.
pub fn print_cdf(label: &str, cdf: &EmpiricalCdf, points: usize) {
    println!("# CDF: {label} (n = {})", cdf.len());
    println!("# {label}_value fraction");
    for (v, f) in cdf.plot_points(points) {
        println!("{v:.4} {f:.3}");
    }
    println!(
        "# {label}: median = {:.4}, 90th percentile = {:.4}",
        cdf.median(),
        cdf.percentile(90.0)
    );
}

/// Prints a `x median p90` series (the Fig. 9/10 format).
pub fn print_median_p90_series(header: &str, rows: &[(f64, f64, f64)]) {
    println!("# {header}");
    for &(x, med, p90) in rows {
        println!("{x:.2} {med:.4} {p90:.4}");
    }
}

/// Formats meters as centimeters for summary lines.
pub fn cm(meters: f64) -> String {
    format!("{:.1} cm", meters * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_formats() {
        assert_eq!(cm(0.131), "13.1 cm");
        assert_eq!(cm(0.0), "0.0 cm");
    }

    #[test]
    fn printing_does_not_panic() {
        banner("F8", "demo", "medians 10/9/18 cm");
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0]);
        print_cdf("x", &cdf, 5);
        print_median_p90_series("dist median p90", &[(3.0, 0.1, 0.3)]);
    }
}
