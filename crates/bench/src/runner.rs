//! End-to-end tracking experiments: simulator in, error statistics out.

use witrack_core::metrics::AxisErrors;
use witrack_core::pointing::{PointingConfig, PointingEstimate, PointingEstimator};
use witrack_core::{SolverChoice, WiTrack, WiTrackConfig};
use witrack_fmcw::{SweepConfig, TofFrame};
use witrack_geom::{AntennaArray, TArray, Vec3};
use witrack_sim::motion::{Activity, ActivityScript, PointingScript, RandomWalk, Rect};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

/// Parameters of one randomized tracking experiment (§9.1–9.3 workloads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingSpec {
    /// Through-wall (array behind the sheetrock wall) vs line-of-sight.
    pub through_wall: bool,
    /// Experiment length (s). The paper runs 1-minute experiments.
    pub duration_s: f64,
    /// Tx–Rx antenna separation (m). 1 m default; Fig. 10 sweeps it.
    pub separation: f64,
    /// Trial seed: drives the walk, the noise, and the specular wander.
    pub seed: u64,
    /// Direct-path occlusion amplitude (1.0 = clear; A1 lowers it).
    pub occlusion_amp: f64,
    /// Subject build scale (≈0.8–1.15 across the paper's 11 subjects).
    pub subject_scale: f64,
    /// Receiver noise std-dev.
    pub noise_std: f64,
    /// Sweep configuration (the paper's by default; tests pass reduced ones).
    pub sweep: SweepConfig,
    /// Extra receive antennas beyond the T's three (A2 ablation; forces the
    /// least-squares solver).
    pub extra_rx: usize,
    /// Walking speed (m/s).
    pub walk_speed: f64,
    /// Walking region override (defaults to the paper's 6 × 5 m VICON area).
    pub region: Option<Rect>,
    /// Back-wall depth override (m; default 10.0). Fig. 9 pushes the subject
    /// out to 11 m, which needs a deeper room.
    pub room_depth_y: f64,
}

impl Default for TrackingSpec {
    fn default() -> Self {
        TrackingSpec {
            through_wall: true,
            duration_s: 15.0,
            separation: 1.0,
            seed: 1,
            occlusion_amp: 1.0,
            subject_scale: 1.0,
            noise_std: 0.05,
            sweep: SweepConfig::witrack(),
            extra_rx: 0,
            walk_speed: 1.0,
            region: None,
            room_depth_y: 10.0,
        }
    }
}

/// One evaluated frame of a tracking experiment.
#[derive(Debug, Clone, Copy)]
pub struct TrackSample {
    /// Frame time (s).
    pub time_s: f64,
    /// WiTrack's position estimate.
    pub estimate: Vec3,
    /// The §8(a)-compensated ground truth (mean body-surface point).
    pub truth: Vec3,
    /// Distance from the transmit antenna to the truth (for Fig. 9 binning).
    pub distance_from_tx: f64,
    /// Whether this frame's estimate was held/interpolated.
    pub held: bool,
}

/// Everything one experiment produced.
#[derive(Debug, Clone)]
pub struct TrackingResult {
    /// Per-axis absolute errors over all evaluated frames.
    pub errors: AxisErrors,
    /// The raw evaluated frames.
    pub samples: Vec<TrackSample>,
    /// Fraction of frames where the pipeline had no position solution.
    pub dropout_fraction: f64,
}

/// Warm-up trimmed from the start of every experiment (background baseline,
/// Kalman seeding), in seconds.
const WARMUP_S: f64 = 2.0;

/// Runs one tracking experiment end-to-end.
pub fn run_tracking(spec: &TrackingSpec) -> TrackingResult {
    let origin = Vec3::new(0.0, 0.0, 1.0);
    let mut scene = Scene::witrack_lab(spec.through_wall).with_occlusion(spec.occlusion_amp);
    if spec.room_depth_y != 10.0 {
        // Move the back wall so deeper walking regions stay indoors.
        if let Some(back) = scene.bounce_walls.last_mut() {
            back.plane = witrack_geom::Plane::wall_at_y(spec.room_depth_y);
        }
    }
    let body = BodyModel::scaled(spec.subject_scale);
    let center_z = spec.subject_scale; // body center ≈ 1 m for scale 1

    let wt_cfg = WiTrackConfig {
        sweep: spec.sweep,
        array_origin: origin,
        antenna_separation: spec.separation,
        solver: if spec.extra_rx == 0 {
            SolverChoice::ClosedForm
        } else {
            SolverChoice::LeastSquares
        },
        ..WiTrackConfig::witrack_default()
    };
    let (mut wt, array) = if spec.extra_rx == 0 {
        let wt = WiTrack::new(wt_cfg).expect("valid config");
        let array = wt.array().clone();
        (wt, array)
    } else {
        let array = AntennaArray::t_shape_extended(origin, spec.separation, spec.extra_rx);
        let wt = WiTrack::with_array(wt_cfg, array.clone()).expect("valid config");
        (wt, array)
    };

    let motion = RandomWalk::new(
        spec.region.unwrap_or_else(Rect::vicon_area),
        center_z,
        spec.walk_speed,
        spec.duration_s,
        0.25,
        spec.seed,
    );
    let channel = Channel {
        scene,
        array,
        body,
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep: spec.sweep,
            noise_std: spec.noise_std,
            seed: spec.seed,
        },
        channel,
        Box::new(motion),
    );

    let mut errors = AxisErrors::new();
    let mut samples = Vec::new();
    let mut frames_total = 0u64;
    let mut frames_missing = 0u64;
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = wt.push_sweeps(&refs) {
            if update.time_s < WARMUP_S {
                continue;
            }
            frames_total += 1;
            match update.position {
                Some(est) => {
                    let truth = sim.surface_truth(update.time_s);
                    errors.push(est, truth);
                    samples.push(TrackSample {
                        time_s: update.time_s,
                        estimate: est,
                        truth,
                        distance_from_tx: truth.distance(Vec3::new(0.0, 0.0, 1.0)),
                        held: update.held,
                    });
                }
                None => frames_missing += 1,
            }
        }
    }
    let dropout_fraction = if frames_total == 0 {
        1.0
    } else {
        frames_missing as f64 / frames_total as f64
    };
    TrackingResult {
        errors,
        samples,
        dropout_fraction,
    }
}

/// Runs `f` over every spec on a scoped thread pool sized to the machine
/// (on a single-core box this degrades to sequential execution). Results
/// come back in spec order.
pub fn run_parallel<T, F>(specs: &[TrackingSpec], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&TrackingSpec) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.min(specs.len()).max(1);
    let mut out: Vec<Option<T>> = specs.iter().map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let out_cells: Vec<std::sync::Mutex<&mut Option<T>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let r = f(&specs[i]);
                **out_cells[i].lock().expect("unpoisoned") = Some(r);
            });
        }
    });
    drop(out_cells);
    out.into_iter()
        .map(|o| o.expect("all specs processed"))
        .collect()
}

/// Parameters of one pointing-gesture experiment (§9.4 workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointingSpec {
    /// Trial seed.
    pub seed: u64,
    /// Where the subject stands (body center).
    pub stance: Vec3,
    /// Scripted pointing direction (shoulder-anchored).
    pub direction: Vec3,
    /// Sweep configuration.
    pub sweep: SweepConfig,
    /// Receiver noise std-dev.
    pub noise_std: f64,
    /// Through-wall or line-of-sight.
    pub through_wall: bool,
}

impl Default for PointingSpec {
    fn default() -> Self {
        PointingSpec {
            seed: 1,
            stance: Vec3::new(0.0, 5.0, 1.0),
            direction: Vec3::new(0.0, 1.0, 0.2),
            sweep: SweepConfig::witrack(),
            noise_std: 0.05,
            through_wall: true,
        }
    }
}

/// Result of one pointing trial.
#[derive(Debug, Clone)]
pub struct PointingOutcome {
    /// Angular error (degrees) when an estimate was produced.
    pub error_deg: Option<f64>,
    /// The full estimate, when produced.
    pub estimate: Option<PointingEstimate>,
    /// The truth the error is measured against: the unit hand displacement
    /// rest → extended (what the VICON glove markers measure in §9.4).
    pub truth_direction: Vec3,
}

/// Runs one pointing-gesture experiment end-to-end.
pub fn run_pointing(spec: &PointingSpec) -> PointingOutcome {
    let origin = Vec3::new(0.0, 0.0, 1.0);
    let tarray = TArray::symmetric(origin, 1.0);
    let script = PointingScript::new(spec.stance, spec.direction, spec.seed);
    let truth_direction = (script.hand_extended() - script.hand_rest())
        .normalized()
        .expect("non-degenerate gesture");

    let wt_cfg = WiTrackConfig {
        sweep: spec.sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut wt = WiTrack::new(wt_cfg).expect("valid config");
    let array = wt.array().clone();
    let channel = Channel {
        scene: Scene::witrack_lab(spec.through_wall),
        array,
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep: spec.sweep,
            noise_std: spec.noise_std,
            seed: spec.seed,
        },
        channel,
        Box::new(script),
    );

    let mut frames: Vec<Vec<TofFrame>> = vec![Vec::new(); 3];
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = wt.push_sweeps(&refs) {
            for (k, f) in update.frames.into_iter().enumerate() {
                frames[k].push(f);
            }
        }
    }
    let estimator = PointingEstimator::new(
        PointingConfig::default(),
        tarray,
        spec.sweep.frame_duration_s(),
    );
    match estimator.estimate(&frames) {
        Ok(est) => PointingOutcome {
            error_deg: Some(witrack_core::pointing::angular_error_deg(
                est.direction,
                truth_direction,
            )),
            estimate: Some(est),
            truth_direction,
        },
        Err(_) => PointingOutcome {
            error_deg: None,
            estimate: None,
            truth_direction,
        },
    }
}

/// Parameters of one fall-study activity trial (§9.5 workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivitySpec {
    /// Which of the four activities to perform.
    pub activity: Activity,
    /// Trial seed (randomizes transition speed, final elevation, anchor).
    pub seed: u64,
    /// Trial duration (s).
    pub duration_s: f64,
    /// Sweep configuration.
    pub sweep: SweepConfig,
    /// Receiver noise std-dev.
    pub noise_std: f64,
    /// Through-wall or line-of-sight.
    pub through_wall: bool,
}

impl Default for ActivitySpec {
    fn default() -> Self {
        ActivitySpec {
            activity: Activity::Fall,
            seed: 1,
            duration_s: 18.0,
            sweep: SweepConfig::witrack(),
            noise_std: 0.05,
            through_wall: true,
        }
    }
}

/// Runs one activity trial and returns the tracked elevation series
/// `(t, z)` — the input to the §6.2 fall classifier.
pub fn run_activity(spec: &ActivitySpec) -> Vec<(f64, f64)> {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed.wrapping_mul(31).wrapping_add(7));
    let anchor = Vec3::new(
        -1.0 + 2.0 * rng.random::<f64>(),
        4.0 + 3.0 * rng.random::<f64>(),
        1.0,
    );
    let script = ActivityScript::generate(spec.activity, anchor, spec.duration_s, spec.seed);

    let wt_cfg = WiTrackConfig {
        sweep: spec.sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut wt = WiTrack::new(wt_cfg).expect("valid config");
    let array = wt.array().clone();
    let channel = Channel {
        scene: Scene::witrack_lab(spec.through_wall),
        array,
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep: spec.sweep,
            noise_std: spec.noise_std,
            seed: spec.seed,
        },
        channel,
        Box::new(script),
    );

    let mut track = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = wt.push_sweeps(&refs) {
            if update.time_s < WARMUP_S {
                continue;
            }
            if let Some(p) = update.position {
                track.push((update.time_s, p.z));
            }
        }
    }
    track
}

/// The ground-truth transition parameters of an activity trial, for harness
/// reporting (regenerates the same script the runner used).
pub fn activity_script_for(spec: &ActivitySpec) -> ActivityScript {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed.wrapping_mul(31).wrapping_add(7));
    let anchor = Vec3::new(
        -1.0 + 2.0 * rng.random::<f64>(),
        4.0 + 3.0 * rng.random::<f64>(),
        1.0,
    );
    ActivityScript::generate(spec.activity, anchor, spec.duration_s, spec.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced sweep so tests run quickly in debug builds.
    pub fn quick_sweep() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 100e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        }
    }

    #[test]
    fn tracking_experiment_produces_bounded_errors() {
        let spec = TrackingSpec {
            duration_s: 8.0,
            sweep: quick_sweep(),
            seed: 42,
            ..TrackingSpec::default()
        };
        let r = run_tracking(&spec);
        assert!(r.errors.len() > 200, "only {} samples", r.errors.len());
        assert!(r.dropout_fraction < 0.5, "dropout {}", r.dropout_fraction);
        // This test runs a 10×-reduced bandwidth (1.77 m range bins) so it
        // stays fast in debug builds. Per-antenna TOF errors at that bin
        // width get amplified ~(range/separation)× when projected onto x
        // (the paper's §9.1 geometry argument), so only y — where errors
        // from the bar antennas are common-mode — stays tight. The paper-
        // config accuracy claims are validated by the fig8 harness.
        let (mx, _) = r.errors.summary(0);
        let (my, _) = r.errors.summary(1);
        assert!(my < 2.0, "y median {my}");
        assert!(mx < 5.0, "x median {mx}");
        // The y-beats-x geometric ordering is asserted at this bandwidth in
        // tests/end_to_end.rs and at full bandwidth by the fig8 harness;
        // this particular seed's pause pattern can flip it here.
    }

    #[test]
    fn run_parallel_preserves_order() {
        let specs: Vec<TrackingSpec> = (0..5)
            .map(|i| TrackingSpec {
                seed: i,
                ..TrackingSpec::default()
            })
            .collect();
        let out = run_parallel(&specs, |s| s.seed * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn extra_antennas_run_through_least_squares() {
        let spec = TrackingSpec {
            duration_s: 5.0,
            sweep: quick_sweep(),
            extra_rx: 2,
            seed: 7,
            ..TrackingSpec::default()
        };
        let r = run_tracking(&spec);
        assert!(r.errors.len() > 50);
    }

    #[test]
    fn activity_runner_tracks_elevation_descent() {
        let spec = ActivitySpec {
            activity: Activity::Fall,
            duration_s: 12.0,
            sweep: quick_sweep(),
            seed: 3,
            ..ActivitySpec::default()
        };
        let track = run_activity(&spec);
        // Structural checks only: the reduced test bandwidth (1.77 m bins,
        // amplified ~5× into z by the stem geometry) cannot resolve the
        // ~0.9 m descent; the full-bandwidth descent is validated by the
        // fig6/t1 harnesses and the integration tests.
        assert!(track.len() > 100, "only {} samples", track.len());
        assert!(
            track.windows(2).all(|w| w[1].0 > w[0].0),
            "times not monotone"
        );
        assert!(track.iter().all(|&(_, z)| z.is_finite()));
        // The regenerated script matches the spec.
        let script = activity_script_for(&spec);
        assert_eq!(script.activity(), Activity::Fall);
    }

    #[test]
    fn pointing_runner_executes_with_reduced_config() {
        // The reduced bandwidth cannot resolve an arm stroke accurately, so
        // only check the experiment runs and reports a sane truth vector.
        let spec = PointingSpec {
            sweep: quick_sweep(),
            seed: 5,
            ..PointingSpec::default()
        };
        let out = run_pointing(&spec);
        assert!((out.truth_direction.norm() - 1.0).abs() < 1e-9);
    }
}
