//! Experiment harness shared by the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` reproduces one figure or table of the paper
//! (see DESIGN.md §4 for the index). This library holds what they share:
//! the end-to-end tracking experiment runner (simulator → WiTrack →
//! per-axis errors against the VICON-style ground truth), a thread-pool
//! sweep over independent experiments, tiny CLI parsing, and figure-style
//! printing helpers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod printing;
pub mod runner;

pub use args::HarnessArgs;
pub use runner::{run_parallel, run_tracking, TrackingResult, TrackingSpec};
