//! Multi-target hot-path microbenchmarks: the per-frame association
//! (cost-matrix build + Hungarian solve) and the per-track 3D Kalman
//! update. At the paper's 80 frames/s these run once per frame, so their
//! combined budget is a fraction of the 12.5 ms frame period; at realistic
//! sizes (≤ 8 tracks × 8 detections) both are microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use witrack_geom::Vec3;
use witrack_mtt::assignment::{solve_assignment_greedy, solve_assignment_hungarian};
use witrack_mtt::track::{MttTrack, TrackId};
use witrack_mtt::{CostMatrix, MttConfig};

/// A dense association problem shaped like a busy frame: `n` tracks × `n`
/// detections, costs from a deterministic hash, ~half the pairs gated out.
fn association_problem(n: usize) -> CostMatrix {
    let mut m = CostMatrix::new(n, n);
    for i in 0..n {
        for j in 0..n {
            let h = (i * 31 + j * 17 + 7) % 97;
            if h % 2 == 0 {
                m.set(i, j, h as f64 * 0.01);
            }
        }
    }
    // Guarantee feasibility of the diagonal so cardinality is n.
    for i in 0..n {
        m.set(i, i, 0.5 + i as f64 * 0.01);
    }
    m
}

fn bench_association(c: &mut Criterion) {
    let mut group = c.benchmark_group("association");
    for n in [3usize, 8, 32] {
        let m = association_problem(n);
        group.bench_function(format!("hungarian_{n}x{n}"), |b| {
            b.iter(|| black_box(solve_assignment_hungarian(black_box(&m))))
        });
        group.bench_function(format!("greedy_{n}x{n}"), |b| {
            b.iter(|| black_box(solve_assignment_greedy(black_box(&m))))
        });
    }
    group.finish();
}

fn bench_track_kalman(c: &mut Criterion) {
    let cfg = MttConfig::default();
    c.bench_function("track_update_3axis_kalman", |b| {
        let mut t = MttTrack::new(TrackId(0), Vec3::new(0.0, 5.0, 1.0), &cfg);
        let mut y = 5.0;
        b.iter(|| {
            y += 0.001;
            t.update(black_box(Vec3::new(0.0, y, 1.0)), 0.0125, &cfg);
            black_box(t.position())
        })
    });
    c.bench_function("track_coast_3axis_kalman", |b| {
        let mut t = MttTrack::new(TrackId(0), Vec3::new(0.0, 5.0, 1.0), &cfg);
        t.update(Vec3::new(0.0, 5.01, 1.0), 0.0125, &cfg);
        b.iter(|| {
            t.miss(0.0125, &cfg);
            black_box(t.position())
        })
    });
}

/// One full association frame at tracker scale: build the cost matrix from
/// predictions + detections, solve, update every track — the exact
/// per-frame work `MultiWiTrack` does between contour extraction and
/// output.
fn bench_frame_association_and_update(c: &mut Criterion) {
    let cfg = MttConfig::default();
    let n_tracks = 3;
    let dets: Vec<f64> = vec![8.11, 11.93, 14.72];
    let preds: Vec<f64> = vec![8.0, 12.0, 14.8];
    c.bench_function("frame_assoc_plus_update_3tracks", |b| {
        let mut tracks: Vec<MttTrack> = (0..n_tracks)
            .map(|i| {
                MttTrack::new(
                    TrackId(i as u64),
                    Vec3::new(i as f64, 4.0 + i as f64, 1.0),
                    &cfg,
                )
            })
            .collect();
        b.iter(|| {
            let mut m = CostMatrix::new(n_tracks, dets.len());
            for (ti, p) in preds.iter().enumerate() {
                for (di, d) in dets.iter().enumerate() {
                    let err = (d - p).abs();
                    if err < cfg.gate_round_trip_m {
                        m.set(ti, di, err);
                    }
                }
            }
            let a = solve_assignment_hungarian(&m);
            for (ti, di) in a.row_to_col.iter().enumerate() {
                if di.is_some() {
                    let q = tracks[ti].position();
                    tracks[ti].update(q + Vec3::new(0.0, 0.001, 0.0), 0.0125, &cfg);
                } else {
                    tracks[ti].miss(0.0125, &cfg);
                }
            }
            black_box(&tracks);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_association, bench_track_kalman, bench_frame_association_and_update
}
criterion_main!(benches);
