//! End-to-end pipeline benchmarks against the paper's real-time claims:
//! the full §4+§5 processing of one 12.5 ms frame (5 sweeps × 3 antennas +
//! 3D solve) must finish well inside the frame period, and inside the
//! paper's 75 ms output bound.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use witrack_core::{WiTrack, WiTrackConfig};
use witrack_fmcw::TofEstimator;
use witrack_geom::Vec3;
use witrack_sim::motion::{RandomWalk, Rect};
use witrack_sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

/// Pre-generates one experiment's sweeps at the paper configuration.
fn record_sweeps(seconds: f64) -> Vec<Vec<Vec<f64>>> {
    let sweep = witrack_fmcw::SweepConfig::witrack();
    let array = witrack_geom::AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array,
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, seconds, 0.0, 5);
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 5,
        },
        channel,
        Box::new(motion),
    );
    let mut out = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        out.push(set.per_rx);
    }
    out
}

fn bench_full_frame(c: &mut Criterion) {
    let sweeps = record_sweeps(1.0);
    let cfg = WiTrackConfig::witrack_default();
    c.bench_function("witrack_frame_3ant_full_config", |b| {
        let mut wt = WiTrack::new(cfg).expect("valid config");
        let mut idx = 0usize;
        b.iter(|| {
            // One full frame = 5 sweep intervals.
            for _ in 0..cfg.sweep.sweeps_per_frame {
                let per_rx = &sweeps[idx % sweeps.len()];
                idx += 1;
                let refs: Vec<&[f64]> = per_rx.iter().map(|v| v.as_slice()).collect();
                black_box(wt.push_sweeps(&refs));
            }
        })
    });
}

fn bench_single_antenna_frame(c: &mut Criterion) {
    let sweeps = record_sweeps(1.0);
    let sweep = witrack_fmcw::SweepConfig::witrack();
    c.bench_function("tof_estimator_frame_1ant", |b| {
        let mut est = TofEstimator::new(sweep, 30.0);
        let mut idx = 0usize;
        b.iter(|| {
            for _ in 0..sweep.sweeps_per_frame {
                let s = &sweeps[idx % sweeps.len()][0];
                idx += 1;
                black_box(est.push_sweep(s));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_full_frame, bench_single_antenna_frame
}
criterion_main!(benches);
