//! The §4.1 profile stage in isolation, old path vs new: windowing one
//! frame's averaged sweep, transforming it, and keeping the indoor range
//! band, for all three receive antennas at the paper configuration
//! (n = 2500 samples, ~200 kept bins).
//!
//! * `bluestein_full_3ant` reproduces the pre-CZT production path: a full
//!   2500-point Bluestein FFT (inner radix-2 length 8192) followed by
//!   truncation.
//! * `czt_zoom_3ant` is the current path: the pruned, real-input-packed
//!   chirp-Z zoom transform (inner length 2048) computing only the kept
//!   bins.
//!
//! The acceptance bar for the zoom transform is ≥ 2× over the Bluestein
//! path on this stage.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use witrack_dsp::window::WindowKind;
use witrack_dsp::{Complex, Czt, Fft};
use witrack_fmcw::{RangeProfiler, SweepConfig};

/// One synthetic dechirped sweep per antenna (distinct tones so the work
/// is not degenerate).
fn antenna_sweeps(n: usize) -> Vec<Vec<f64>> {
    (0..3)
        .map(|k| {
            (0..n)
                .map(|i| {
                    let t = i as f64;
                    (0.05 * (k + 3) as f64 * t).cos() + 0.2 * (0.011 * t).sin()
                })
                .collect()
        })
        .collect()
}

fn bench_profile_stage(c: &mut Criterion) {
    let cfg = SweepConfig::witrack();
    let n = cfg.samples_per_sweep();
    let keep = RangeProfiler::new(&cfg, WindowKind::Hann, 30.0).keep_bins();
    let window = WindowKind::Hann.generate(n);
    let sweeps = antenna_sweeps(n);

    let mut group = c.benchmark_group("profile_stage");

    // Pre-PR path: window → full-length Bluestein FFT → truncate.
    {
        let mut plan = Fft::new(n);
        let mut buf = vec![Complex::ZERO; n];
        let mut out = vec![Complex::ZERO; keep];
        group.bench_function(format!("bluestein_full_3ant_n{n}_keep{keep}"), |b| {
            b.iter(|| {
                for sweep in &sweeps {
                    for ((z, &x), &w) in buf.iter_mut().zip(sweep).zip(&window) {
                        *z = Complex::real(x * w);
                    }
                    plan.forward(&mut buf);
                    out.copy_from_slice(&buf[..keep]);
                    black_box(&out);
                }
            })
        });
    }

    // Current path: window → pruned zoom CZT straight into the kept band.
    {
        let czt = Czt::new(n, keep);
        let mut scratch = czt.make_scratch();
        let mut windowed = vec![0.0; n];
        let mut out = vec![Complex::ZERO; keep];
        group.bench_function(
            format!("czt_zoom_3ant_n{n}_keep{keep}_inner{}", czt.inner_len()),
            |b| {
                b.iter(|| {
                    for sweep in &sweeps {
                        for ((y, &x), &w) in windowed.iter_mut().zip(sweep).zip(&window) {
                            *y = x * w;
                        }
                        czt.transform_into(&windowed, &mut out, &mut scratch);
                        black_box(&out);
                    }
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_profile_stage);
criterion_main!(benches);
