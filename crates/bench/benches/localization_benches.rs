//! Localization solver benchmarks: the closed-form T-array solution (the
//! paper's precomputed symbolic solve) vs iterative least squares, plus the
//! RTI baseline's image reconstruction for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use witrack_baselines::{RtiConfig, RtiNetwork};
use witrack_geom::multilateration::{solve_least_squares, GaussNewtonConfig};
use witrack_geom::{AntennaArray, TArray, Vec3};

fn bench_solvers(c: &mut Criterion) {
    let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let p = Vec3::new(0.7, 5.0, 1.2);
    let rts3 = t.round_trips(p);
    c.bench_function("closed_form_t_array", |b| {
        b.iter(|| black_box(t.solve(black_box(rts3))))
    });

    let arr3 = t.antenna_array();
    let v3 = rts3.to_vec();
    c.bench_function("gauss_newton_3rx", |b| {
        b.iter(|| {
            black_box(solve_least_squares(
                black_box(&arr3),
                black_box(&v3),
                &GaussNewtonConfig::default(),
            ))
        })
    });

    let arr6 = AntennaArray::t_shape_extended(Vec3::new(0.0, 0.0, 1.0), 1.0, 3);
    let v6 = arr6.round_trips(p);
    c.bench_function("gauss_newton_6rx", |b| {
        b.iter(|| {
            black_box(solve_least_squares(
                black_box(&arr6),
                black_box(&v6),
                &GaussNewtonConfig::default(),
            ))
        })
    });
}

fn bench_rti(c: &mut Criterion) {
    let net = RtiNetwork::new(-2.5, 2.5, 3.0, 9.0, RtiConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let y = net.simulate_measurements(0.5, 6.0, &mut rng);
    c.bench_function("rti_localize_20nodes", |b| {
        b.iter(|| black_box(net.localize(black_box(&y))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_solvers, bench_rti
}
criterion_main!(benches);
