//! DSP substrate microbenchmarks: the per-sweep FFT dominates the §7
//! real-time budget, so its cost at the paper's exact 2500-sample length
//! (Bluestein) and at the nearest power of two (radix-2) are both tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use witrack_dsp::kalman::{Kalman1D, KalmanConfig};
use witrack_dsp::{Complex, Czt, Fft};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [2048usize, 2500, 4096] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        let mut plan = Fft::new(n);
        let mut buf = data.clone();
        group.bench_function(format!("forward_{n}"), |b| {
            b.iter(|| {
                buf.copy_from_slice(&data);
                plan.forward(black_box(&mut buf));
            })
        });
    }
    group.finish();
}

fn bench_czt(c: &mut Criterion) {
    // The zoomed range transform at the paper shape: 2500 real samples in,
    // 200 range bins out (vs the 2500-bin full Bluestein above).
    let mut group = c.benchmark_group("czt");
    let n = 2500;
    let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    for keep in [100usize, 200, 400] {
        let czt = Czt::new(n, keep);
        let mut scratch = czt.make_scratch();
        let mut out = vec![Complex::ZERO; keep];
        group.bench_function(format!("zoom_{n}_keep{keep}"), |b| {
            b.iter(|| czt.transform_into(black_box(&signal), &mut out, &mut scratch))
        });
    }
    group.finish();
}

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("kalman_update", |b| {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        kf.update(5.0, 0.0125);
        let mut z = 5.0;
        b.iter(|| {
            z += 0.001;
            black_box(kf.update(black_box(z), 0.0125))
        })
    });
}

fn bench_regression(c: &mut Criterion) {
    let ts: Vec<f64> = (0..64).map(|i| i as f64 * 0.0125).collect();
    let ys: Vec<f64> = ts
        .iter()
        .map(|&t| 4.0 + 2.0 * t + (t * 50.0).sin() * 0.01)
        .collect();
    c.bench_function("robust_line_64pts", |b| {
        b.iter(|| witrack_dsp::regression::robust_line(black_box(&ts), black_box(&ys)))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_czt,
    bench_kalman,
    bench_regression
);
criterion_main!(benches);
