//! A time × range magnitude matrix with axes, for the figure harnesses.
//!
//! Fig. 3 and Fig. 5 of the paper are spectrograms (power per round-trip
//! distance per time). The pipeline itself streams; this container exists so
//! harnesses and examples can collect frames and emit gnuplot-ready CSV or a
//! terminal heat map.

use crate::config::SweepConfig;

/// A collected spectrogram: one magnitude row per processing frame.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    frame_duration_s: f64,
    round_trip_per_bin: f64,
    bins: usize,
    rows: Vec<Vec<f64>>,
}

impl Spectrogram {
    /// Creates an empty spectrogram for profiles of `bins` range bins.
    pub fn new(cfg: &SweepConfig, bins: usize) -> Spectrogram {
        Spectrogram {
            frame_duration_s: cfg.frame_duration_s(),
            round_trip_per_bin: cfg.round_trip_per_bin(),
            bins,
            rows: Vec::new(),
        }
    }

    /// Appends one frame of magnitudes.
    ///
    /// # Panics
    /// Panics if the row width differs from the configured bin count.
    pub fn push_row(&mut self, magnitudes: &[f64]) {
        assert_eq!(magnitudes.len(), self.bins, "row width mismatch");
        self.rows.push(magnitudes.to_vec());
    }

    /// Number of frames collected.
    pub fn num_frames(&self) -> usize {
        self.rows.len()
    }

    /// Number of range bins per frame.
    pub fn num_bins(&self) -> usize {
        self.bins
    }

    /// Whether any frames have been collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Time (s) of frame `i`.
    pub fn time_of(&self, i: usize) -> f64 {
        i as f64 * self.frame_duration_s
    }

    /// Round-trip distance (m) of bin `j`.
    pub fn round_trip_of(&self, j: usize) -> f64 {
        j as f64 * self.round_trip_per_bin
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Writes `time_s,round_trip_m,magnitude` CSV rows (with header) into a
    /// string — one line per (frame, bin) cell, subsampled by `time_stride`
    /// frames to keep files manageable.
    pub fn to_csv(&self, time_stride: usize) -> String {
        let stride = time_stride.max(1);
        let mut out = String::from("time_s,round_trip_m,magnitude\n");
        for (i, row) in self.rows.iter().enumerate().step_by(stride) {
            for (j, &m) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{:.4},{:.3},{:.6e}\n",
                    self.time_of(i),
                    self.round_trip_of(j),
                    m
                ));
            }
        }
        out
    }

    /// Renders a coarse ASCII heat map (time down, range across), for the
    /// examples. `width`/`height` bound the output size.
    pub fn ascii(&self, width: usize, height: usize) -> String {
        if self.rows.is_empty() || width == 0 || height == 0 {
            return String::new();
        }
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = self
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0_f64, |a, &b| a.max(b))
            .max(1e-300);
        let h = height.min(self.rows.len());
        let w = width.min(self.bins);
        let mut out = String::new();
        for oy in 0..h {
            let iy = oy * self.rows.len() / h;
            for ox in 0..w {
                let ix = ox * self.bins / w;
                // Log scale over 40 dB of dynamic range.
                let v = self.rows[iy][ix] / max;
                let db = 10.0 * v.max(1e-30).log10();
                let norm = ((db + 40.0) / 40.0).clamp(0.0, 1.0);
                let idx = (norm * (shades.len() - 1) as f64).round() as usize;
                out.push(shades[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Spectrogram {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 4);
        s.push_row(&[0.0, 1.0, 0.0, 0.0]);
        s.push_row(&[0.0, 0.0, 2.0, 0.0]);
        s
    }

    #[test]
    fn axes_follow_config() {
        let s = spec();
        assert_eq!(s.num_frames(), 2);
        assert_eq!(s.num_bins(), 4);
        assert!((s.time_of(1) - 0.0125).abs() < 1e-12);
        let cfg = SweepConfig::witrack();
        assert!((s.round_trip_of(2) - 2.0 * cfg.round_trip_per_bin()).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let s = spec();
        let csv = s.to_csv(1);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,round_trip_m,magnitude");
        assert_eq!(lines.len(), 1 + 2 * 4);
    }

    #[test]
    fn csv_stride_subsamples_frames() {
        let s = spec();
        let csv = s.to_csv(2);
        assert_eq!(csv.lines().count(), 1 + 4);
    }

    #[test]
    fn ascii_renders_requested_size() {
        let s = spec();
        let art = s.ascii(4, 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.len() == 4));
        // The brightest cell should use a darker shade than empty cells.
        assert_ne!(art.chars().next().unwrap(), '@');
    }

    #[test]
    fn empty_spectrogram_renders_empty() {
        let cfg = SweepConfig::witrack();
        let s = Spectrogram::new(&cfg, 8);
        assert!(s.is_empty());
        assert!(s.ascii(10, 10).is_empty());
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 8);
        s.push_row(&[1.0; 4]);
    }
}
