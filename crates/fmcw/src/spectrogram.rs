//! A time × range magnitude matrix with axes, for the figure harnesses.
//!
//! Fig. 3 and Fig. 5 of the paper are spectrograms (power per round-trip
//! distance per time). The pipeline itself streams; this container exists so
//! harnesses and examples can collect frames and emit gnuplot-ready CSV or a
//! terminal heat map.

use crate::config::SweepConfig;

/// A collected spectrogram: one magnitude row per processing frame.
///
/// By default every frame is kept (the figure harnesses collect a whole
/// bounded experiment). Long-running monitors should cap the window with
/// [`Spectrogram::with_max_frames`]: once full, the oldest row is recycled
/// for each new frame (a ring), so memory stays bounded and the steady
/// state allocates nothing.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    frame_duration_s: f64,
    round_trip_per_bin: f64,
    bins: usize,
    /// Row storage. Until the cap is reached this is a plain append-only
    /// vector; once full it becomes a ring and `head` marks the oldest
    /// retained frame, so eviction is an O(bins) overwrite — never a
    /// front-removal memmove.
    rows: Vec<Vec<f64>>,
    /// Ring start: index in `rows` of the oldest retained frame.
    head: usize,
    /// Retention cap in frames (`None` = unbounded).
    max_frames: Option<usize>,
    /// Frames dropped off the front of the window so far.
    dropped: u64,
}

impl Spectrogram {
    /// Creates an empty, unbounded spectrogram for profiles of `bins`
    /// range bins.
    pub fn new(cfg: &SweepConfig, bins: usize) -> Spectrogram {
        Spectrogram {
            frame_duration_s: cfg.frame_duration_s(),
            round_trip_per_bin: cfg.round_trip_per_bin(),
            bins,
            rows: Vec::new(),
            head: 0,
            max_frames: None,
            dropped: 0,
        }
    }

    /// Caps retention at `max_frames` rows (a sliding window).
    ///
    /// # Panics
    /// Panics if `max_frames == 0`.
    pub fn with_max_frames(mut self, max_frames: usize) -> Spectrogram {
        assert!(max_frames > 0, "spectrogram capacity must be positive");
        self.max_frames = Some(max_frames);
        // Re-linearize the storage (oldest first, head = 0) so both a
        // shrink below the current fill and a later grow past a wrapped
        // ring leave rows in time order, then trim any excess.
        let len = self.rows.len();
        let excess = len.saturating_sub(max_frames);
        if len > 0 {
            let shift = (self.head + excess) % len;
            if shift != 0 {
                self.rows.rotate_left(shift);
            }
        }
        self.head = 0;
        self.rows.truncate(max_frames);
        self.dropped += excess as u64;
        self
    }

    /// The retention cap, if any.
    pub fn max_frames(&self) -> Option<usize> {
        self.max_frames
    }

    /// Frames that have been dropped off the front of the window.
    pub fn frames_dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends one frame of magnitudes. When the retention cap is reached,
    /// the oldest row's buffer is overwritten in place (O(bins), no
    /// allocation, no shifting).
    ///
    /// # Panics
    /// Panics if the row width differs from the configured bin count.
    pub fn push_row(&mut self, magnitudes: &[f64]) {
        assert_eq!(magnitudes.len(), self.bins, "row width mismatch");
        if let Some(cap) = self.max_frames {
            if self.rows.len() >= cap {
                self.rows[self.head].copy_from_slice(magnitudes);
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
                return;
            }
        }
        self.rows.push(magnitudes.to_vec());
    }

    /// The `i`-th retained frame, oldest first.
    ///
    /// # Panics
    /// Panics if `i >= num_frames()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows.len(), "frame index out of range");
        &self.rows[(self.head + i) % self.rows.len()]
    }

    /// Number of frames collected.
    pub fn num_frames(&self) -> usize {
        self.rows.len()
    }

    /// Number of range bins per frame.
    pub fn num_bins(&self) -> usize {
        self.bins
    }

    /// Whether any frames have been collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Time (s) of the `i`-th *retained* frame, accounting for any frames
    /// the ring has dropped.
    pub fn time_of(&self, i: usize) -> f64 {
        (self.dropped + i as u64) as f64 * self.frame_duration_s
    }

    /// Round-trip distance (m) of bin `j`.
    pub fn round_trip_of(&self, j: usize) -> f64 {
        j as f64 * self.round_trip_per_bin
    }

    /// The retained rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows.len()).map(|i| self.row(i))
    }

    /// Writes `time_s,round_trip_m,magnitude` CSV rows (with header) into a
    /// string — one line per (frame, bin) cell, subsampled by `time_stride`
    /// frames to keep files manageable.
    pub fn to_csv(&self, time_stride: usize) -> String {
        let stride = time_stride.max(1);
        let mut out = String::from("time_s,round_trip_m,magnitude\n");
        for i in (0..self.rows.len()).step_by(stride) {
            for (j, &m) in self.row(i).iter().enumerate() {
                out.push_str(&format!(
                    "{:.4},{:.3},{:.6e}\n",
                    self.time_of(i),
                    self.round_trip_of(j),
                    m
                ));
            }
        }
        out
    }

    /// Renders a coarse ASCII heat map (time down, range across), for the
    /// examples. `width`/`height` bound the output size.
    pub fn ascii(&self, width: usize, height: usize) -> String {
        if self.rows.is_empty() || width == 0 || height == 0 {
            return String::new();
        }
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = self
            .rows()
            .flat_map(|r| r.iter())
            .fold(0.0_f64, |a, &b| a.max(b))
            .max(1e-300);
        let h = height.min(self.rows.len());
        let w = width.min(self.bins);
        let mut out = String::new();
        for oy in 0..h {
            let iy = oy * self.rows.len() / h;
            for ox in 0..w {
                let ix = ox * self.bins / w;
                // Log scale over 40 dB of dynamic range.
                let v = self.row(iy)[ix] / max;
                let db = 10.0 * v.max(1e-30).log10();
                let norm = ((db + 40.0) / 40.0).clamp(0.0, 1.0);
                let idx = (norm * (shades.len() - 1) as f64).round() as usize;
                out.push(shades[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Spectrogram {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 4);
        s.push_row(&[0.0, 1.0, 0.0, 0.0]);
        s.push_row(&[0.0, 0.0, 2.0, 0.0]);
        s
    }

    #[test]
    fn axes_follow_config() {
        let s = spec();
        assert_eq!(s.num_frames(), 2);
        assert_eq!(s.num_bins(), 4);
        assert!((s.time_of(1) - 0.0125).abs() < 1e-12);
        let cfg = SweepConfig::witrack();
        assert!((s.round_trip_of(2) - 2.0 * cfg.round_trip_per_bin()).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let s = spec();
        let csv = s.to_csv(1);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,round_trip_m,magnitude");
        assert_eq!(lines.len(), 1 + 2 * 4);
    }

    #[test]
    fn csv_stride_subsamples_frames() {
        let s = spec();
        let csv = s.to_csv(2);
        assert_eq!(csv.lines().count(), 1 + 4);
    }

    #[test]
    fn ascii_renders_requested_size() {
        let s = spec();
        let art = s.ascii(4, 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.len() == 4));
        // The brightest cell should use a darker shade than empty cells.
        assert_ne!(art.chars().next().unwrap(), '@');
    }

    #[test]
    fn empty_spectrogram_renders_empty() {
        let cfg = SweepConfig::witrack();
        let s = Spectrogram::new(&cfg, 8);
        assert!(s.is_empty());
        assert!(s.ascii(10, 10).is_empty());
    }

    #[test]
    fn ring_capacity_bounds_rows_and_advances_time() {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 2).with_max_frames(3);
        for k in 0..7 {
            s.push_row(&[k as f64, 0.0]);
        }
        assert_eq!(s.num_frames(), 3, "window must stay capped");
        assert_eq!(s.frames_dropped(), 4);
        // Oldest retained row is frame 4; its time axis reflects that.
        assert_eq!(s.row(0)[0], 4.0);
        let ordered: Vec<f64> = s.rows().map(|r| r[0]).collect();
        assert_eq!(ordered, vec![4.0, 5.0, 6.0]);
        assert!((s.time_of(0) - 4.0 * cfg.frame_duration_s()).abs() < 1e-12);
        assert!((s.time_of(2) - 6.0 * cfg.frame_duration_s()).abs() < 1e-12);
    }

    #[test]
    fn ring_recycles_row_buffers() {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 4).with_max_frames(2);
        s.push_row(&[1.0; 4]);
        s.push_row(&[2.0; 4]);
        let oldest_ptr = s.row(0).as_ptr();
        s.push_row(&[3.0; 4]);
        // The evicted row's allocation carries the newest frame.
        assert_eq!(s.row(1).as_ptr(), oldest_ptr);
        assert_eq!(s.row(1)[0], 3.0);
        assert_eq!(s.row(0)[0], 2.0, "retained order must stay oldest-first");
    }

    #[test]
    fn capping_an_overfull_spectrogram_trims_front() {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 1);
        for k in 0..5 {
            s.push_row(&[k as f64]);
        }
        let s = s.with_max_frames(2);
        assert_eq!(s.num_frames(), 2);
        assert_eq!(s.row(0)[0], 3.0);
        assert_eq!(s.frames_dropped(), 3);
    }

    #[test]
    fn growing_the_cap_of_a_wrapped_ring_keeps_time_order() {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 1).with_max_frames(2);
        for k in 0..3 {
            s.push_row(&[k as f64]); // ring wraps: head = 1, rows [2, 1]
        }
        let mut s = s.with_max_frames(4);
        s.push_row(&[3.0]);
        let ordered: Vec<f64> = s.rows().map(|r| r[0]).collect();
        assert_eq!(ordered, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.frames_dropped(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let cfg = SweepConfig::witrack();
        let _ = Spectrogram::new(&cfg, 1).with_max_frames(0);
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let cfg = SweepConfig::witrack();
        let mut s = Spectrogram::new(&cfg, 8);
        s.push_row(&[1.0; 4]);
    }
}
