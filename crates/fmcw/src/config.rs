//! FMCW sweep parameters and the paper's resolution identities (Eqs. 1–4).

use serde::{Deserialize, Serialize};

/// Speed of light (m/s), the paper's `C`.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Parameters of the frequency sweep and its digitization.
///
/// The defaults are the prototype's (paper §4.1, §7): a 1.69 GHz sweep from
/// 5.56 GHz at 0.75 mW, 2.5 ms per sweep, baseband sampled at 1 MS/s by the
/// USRP LFRX-LF, and 5 sweeps coherently averaged per processing frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Sweep start carrier frequency (Hz).
    pub start_freq_hz: f64,
    /// Total swept bandwidth `B` (Hz).
    pub bandwidth_hz: f64,
    /// Sweep duration `T_sweep` (seconds).
    pub sweep_duration_s: f64,
    /// Baseband sampling rate (Hz).
    pub sample_rate_hz: f64,
    /// Sweeps coherently averaged into one processing frame (paper: 5).
    pub sweeps_per_frame: usize,
    /// Transmit power (Watts). Informational; the paper transmits 0.75 mW.
    pub transmit_power_w: f64,
}

/// Validation failures for [`SweepConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be positive is zero/negative/non-finite.
    NonPositiveField(&'static str),
    /// `sample_rate_hz · sweep_duration_s` is not (close to) an integer
    /// number of samples.
    NonIntegralSamplesPerSweep,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveField(name) => write!(f, "{name} must be positive"),
            ConfigError::NonIntegralSamplesPerSweep => {
                write!(f, "sample rate times sweep duration must be an integer")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::witrack()
    }
}

impl SweepConfig {
    /// The prototype configuration from the paper.
    pub fn witrack() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e9,
            bandwidth_hz: 1.69e9,
            sweep_duration_s: 2.5e-3,
            sample_rate_hz: 1.0e6,
            sweeps_per_frame: 5,
            transmit_power_w: 0.75e-3,
        }
    }

    /// A 10×-reduced variant of [`witrack`](SweepConfig::witrack) with 4×
    /// the bandwidth of the coarsest test sweep: 676 MHz over 1 ms at
    /// 250 kS/s (250 samples, 0.44 m round-trip bins). Fine enough to
    /// resolve elevation changes and separate two people, ~10× cheaper
    /// than the prototype sweep — the standard choice for integration
    /// tests and multi-target demos that need real resolution in debug
    /// builds.
    pub fn witrack_mid() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 6.76e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 250e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        }
    }

    /// Checks all fields. Returns `self` for chaining.
    pub fn validate(&self) -> Result<&SweepConfig, ConfigError> {
        for (v, name) in [
            (self.start_freq_hz, "start_freq_hz"),
            (self.bandwidth_hz, "bandwidth_hz"),
            (self.sweep_duration_s, "sweep_duration_s"),
            (self.sample_rate_hz, "sample_rate_hz"),
            (self.sweeps_per_frame as f64, "sweeps_per_frame"),
            (self.transmit_power_w, "transmit_power_w"),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(ConfigError::NonPositiveField(name));
            }
        }
        let n = self.sample_rate_hz * self.sweep_duration_s;
        if (n - n.round()).abs() > 1e-6 {
            return Err(ConfigError::NonIntegralSamplesPerSweep);
        }
        Ok(self)
    }

    /// Samples captured per sweep (2500 for the prototype).
    pub fn samples_per_sweep(&self) -> usize {
        (self.sample_rate_hz * self.sweep_duration_s).round() as usize
    }

    /// Sweep slope `B / T_sweep` (Hz/s) — the proportionality between beat
    /// frequency and TOF in Eq. 1.
    pub fn slope(&self) -> f64 {
        self.bandwidth_hz / self.sweep_duration_s
    }

    /// Eq. 1: TOF (s) for a measured frequency shift `Δf` (Hz).
    pub fn tof_for_beat(&self, beat_hz: f64) -> f64 {
        beat_hz / self.slope()
    }

    /// Inverse of Eq. 1: beat frequency (Hz) for a round-trip TOF (s).
    pub fn beat_for_tof(&self, tof_s: f64) -> f64 {
        tof_s * self.slope()
    }

    /// Beat frequency (Hz) for a round-trip *distance* (m), via Eq. 4.
    pub fn beat_for_round_trip(&self, round_trip_m: f64) -> f64 {
        self.beat_for_tof(round_trip_m / SPEED_OF_LIGHT)
    }

    /// Eq. 4: round-trip distance (m) for a beat frequency (Hz).
    pub fn round_trip_for_beat(&self, beat_hz: f64) -> f64 {
        SPEED_OF_LIGHT * self.tof_for_beat(beat_hz)
    }

    /// FFT bin spacing `1/T_sweep` (Hz) — the minimum measurable frequency
    /// shift (§4.1).
    pub fn bin_spacing_hz(&self) -> f64 {
        1.0 / self.sweep_duration_s
    }

    /// Round-trip distance covered by one FFT bin: `C / B` (m). Half of this
    /// is the paper's one-way resolution.
    pub fn round_trip_per_bin(&self) -> f64 {
        SPEED_OF_LIGHT / self.bandwidth_hz
    }

    /// Eq. 3: one-way range resolution `C / 2B` (m). 8.87 cm for the
    /// prototype ("8.8 cm" in the paper).
    pub fn range_resolution(&self) -> f64 {
        SPEED_OF_LIGHT / (2.0 * self.bandwidth_hz)
    }

    /// Maximum unambiguous round-trip distance (m): beat frequencies are
    /// identifiable up to Nyquist (`sample_rate / 2`).
    pub fn max_round_trip(&self) -> f64 {
        self.round_trip_for_beat(self.sample_rate_hz / 2.0)
    }

    /// Round-trip distance (m) for a (fractional) FFT bin index.
    pub fn round_trip_for_bin(&self, bin: f64) -> f64 {
        self.round_trip_for_beat(bin * self.bin_spacing_hz())
    }

    /// Fractional FFT bin index for a round-trip distance (m).
    pub fn bin_for_round_trip(&self, round_trip_m: f64) -> f64 {
        self.beat_for_round_trip(round_trip_m) / self.bin_spacing_hz()
    }

    /// Duration of one processing frame: `sweeps_per_frame · T_sweep`
    /// (12.5 ms for the prototype — §4.3's human-quasi-static window).
    pub fn frame_duration_s(&self) -> f64 {
        self.sweeps_per_frame as f64 * self.sweep_duration_s
    }

    /// Frames per second emitted by the pipeline (80 Hz for the prototype).
    pub fn frame_rate_hz(&self) -> f64 {
        1.0 / self.frame_duration_s()
    }

    /// End of the swept band (Hz). 7.25 GHz for the prototype.
    pub fn end_freq_hz(&self) -> f64 {
        self.start_freq_hz + self.bandwidth_hz
    }

    /// Carrier at the sweep midpoint (Hz), used for phase modeling.
    pub fn center_freq_hz(&self) -> f64 {
        self.start_freq_hz + self.bandwidth_hz / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) {
        assert!((a - b).abs() <= rel * b.abs().max(1e-12), "{a} vs {b}");
    }

    #[test]
    fn paper_constants_hold() {
        let c = SweepConfig::witrack();
        c.validate().unwrap();
        assert_eq!(c.samples_per_sweep(), 2500);
        // §4.1: "our sweep bandwidth allows us to obtain a distance
        // resolution of 8.8 cm".
        close(c.range_resolution(), 0.0887, 0.01);
        // Slope = 1.69 GHz / 2.5 ms = 6.76e11 Hz/s.
        close(c.slope(), 6.76e11, 1e-9);
        // Bin spacing = 400 Hz.
        close(c.bin_spacing_hz(), 400.0, 1e-12);
        // Frame duration 12.5 ms → 80 fps.
        close(c.frame_duration_s(), 0.0125, 1e-12);
        close(c.frame_rate_hz(), 80.0, 1e-12);
        // Sweep ends at 7.25 GHz.
        close(c.end_freq_hz(), 7.25e9, 1e-12);
    }

    #[test]
    fn eq1_round_trips_through_eq4() {
        let c = SweepConfig::witrack();
        for d in [1.0, 5.0, 12.5, 30.0] {
            let beat = c.beat_for_round_trip(d);
            close(c.round_trip_for_beat(beat), d, 1e-12);
            let tof = c.tof_for_beat(beat);
            close(tof, d / SPEED_OF_LIGHT, 1e-12);
        }
    }

    #[test]
    fn bin_mapping_is_consistent() {
        let c = SweepConfig::witrack();
        // One bin = C/B round trip ≈ 0.1774 m.
        close(c.round_trip_per_bin(), 2.0 * c.range_resolution(), 1e-12);
        close(c.round_trip_for_bin(1.0), c.round_trip_per_bin(), 1e-12);
        for bin in [0.0, 1.0, 56.4, 169.0] {
            close(c.bin_for_round_trip(c.round_trip_for_bin(bin)), bin, 1e-9);
        }
    }

    #[test]
    fn nyquist_range_exceeds_room_scale() {
        let c = SweepConfig::witrack();
        // 500 kHz beat → ~222 m round trip; far beyond any indoor scene.
        assert!(c.max_round_trip() > 200.0);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = SweepConfig::witrack();
        c.bandwidth_hz = 0.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositiveField("bandwidth_hz"))
        );
        let mut c = SweepConfig::witrack();
        c.sweep_duration_s = 2.00000049e-3; // 2000.00049 samples
        assert_eq!(c.validate(), Err(ConfigError::NonIntegralSamplesPerSweep));
        let mut c = SweepConfig::witrack();
        c.sweeps_per_frame = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn scaled_configs_keep_identities() {
        // A reduced config used by fast tests: identities must be intrinsic,
        // not tied to the paper's numbers.
        let c = SweepConfig {
            start_freq_hz: 5.56e6,
            bandwidth_hz: 1.69e6,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 250e3,
            sweeps_per_frame: 3,
            transmit_power_w: 1e-3,
        };
        c.validate().unwrap();
        assert_eq!(c.samples_per_sweep(), 250);
        close(c.range_resolution(), SPEED_OF_LIGHT / (2.0 * 1.69e6), 1e-12);
        close(c.frame_duration_s(), 3e-3, 1e-12);
    }
}
