//! FMCW radar processing for WiTrack (paper §4, §7).
//!
//! The transmit chain sweeps a narrowband carrier linearly across
//! B = 1.69 GHz every 2.5 ms; the receive chain mixes the echo with the
//! transmitted chirp so every reflection becomes a baseband tone at
//! `Δf = slope · TOF` (Eq. 1). This crate turns the resulting 1 MS/s
//! baseband stream into clean per-antenna round-trip distances:
//!
//! ```text
//! sweeps ──► [profile]   5-sweep coherent average + FFT  ──► range profile
//!        ──► [background] consecutive-frame subtraction  ──► moving reflectors only
//!        ──► [contour]    first local max above noise    ──► raw round-trip distance
//!        ──► [denoise]    outlier gate + hold + Kalman   ──► clean round-trip distance
//! ```
//!
//! assembled end-to-end by [`TofEstimator`] (one per receive antenna).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod background;
pub mod config;
pub mod contour;
pub mod denoise;
pub mod pipeline;
pub mod profile;
pub mod spectrogram;

pub use background::BackgroundSubtractor;
pub use config::SweepConfig;
pub use contour::{ContourConfig, ContourTracker, Detection};
pub use denoise::{DenoiseConfig, DenoisedDistance, DistanceDenoiser};
pub use pipeline::{StageTimes, TofEstimator, TofFrame};
pub use profile::{RangeProfiler, Sweep};
pub use spectrogram::Spectrogram;
