//! The per-antenna TOF estimation pipeline (paper §4 end-to-end).
//!
//! One [`TofEstimator`] owns the §4 stages for a single receive antenna:
//! sweep accumulation and FFT (§4.1), background subtraction (§4.2), bottom-
//! contour tracking (§4.3), and denoising (§4.4). Push raw sweeps in; get a
//! [`TofFrame`] out every `sweeps_per_frame` sweeps.

use crate::background::BackgroundSubtractor;
use crate::config::SweepConfig;
use crate::contour::{ContourConfig, ContourTracker, Detection};
use crate::denoise::{DenoiseConfig, DenoisedDistance, DistanceDenoiser};
use crate::profile::{RangeProfiler, Sweep};
use witrack_dsp::window::WindowKind;

/// Output of the pipeline for one processing frame.
#[derive(Debug, Clone)]
pub struct TofFrame {
    /// Index of this frame since the stream started.
    pub frame_index: u64,
    /// Time (s) at the *end* of the frame's last sweep.
    pub time_s: f64,
    /// Background-subtracted magnitude spectrum (truncated range axis).
    /// Empty for the first frame (no baseline yet).
    pub magnitudes: Vec<f64>,
    /// Raw contour detection before denoising, if any.
    pub detection: Option<Detection>,
    /// Denoised round-trip distance, once the stream has been seeded.
    pub denoised: Option<DenoisedDistance>,
}

impl TofFrame {
    /// The clean round-trip estimate, if available.
    pub fn round_trip_m(&self) -> Option<f64> {
        self.denoised.map(|d| d.round_trip_m)
    }
}

/// Wall times of the heavy per-antenna stages for one frame-completing
/// sweep (see [`TofEstimator::push_sweep_timed`]). Nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Sweep accumulation + range profiling (the CZT work).
    pub profile_ns: u64,
    /// Background subtraction + contour detection + denoising.
    pub detect_ns: u64,
}

/// End-to-end §4 processing for one receive antenna.
#[derive(Debug, Clone)]
pub struct TofEstimator {
    cfg: SweepConfig,
    profiler: RangeProfiler,
    background: BackgroundSubtractor,
    contour: ContourTracker,
    denoiser: DistanceDenoiser,
    frame_index: u64,
    sweeps_seen: u64,
}

impl TofEstimator {
    /// Creates an estimator with default contour/denoise tuning, keeping
    /// range bins up to `max_round_trip_m`.
    pub fn new(cfg: SweepConfig, max_round_trip_m: f64) -> TofEstimator {
        TofEstimator::with_tuning(
            cfg,
            max_round_trip_m,
            ContourConfig::default(),
            DenoiseConfig::default(),
        )
    }

    /// Creates an estimator with explicit tuning.
    pub fn with_tuning(
        cfg: SweepConfig,
        max_round_trip_m: f64,
        contour: ContourConfig,
        denoise: DenoiseConfig,
    ) -> TofEstimator {
        TofEstimator {
            cfg,
            profiler: RangeProfiler::new(&cfg, WindowKind::Hann, max_round_trip_m),
            background: BackgroundSubtractor::new(),
            contour: ContourTracker::new(cfg, contour),
            denoiser: DistanceDenoiser::new(denoise),
            frame_index: 0,
            sweeps_seen: 0,
        }
    }

    /// The sweep configuration this estimator runs.
    pub fn sweep_config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// Number of range bins in emitted magnitude frames.
    pub fn num_bins(&self) -> usize {
        self.profiler.keep_bins()
    }

    /// Whether the next [`TofEstimator::push_sweep`] completes a frame (and
    /// therefore runs the heavy transform/contour stage). Multi-antenna
    /// drivers use this to fan frame work out across threads only when
    /// there is frame work to do.
    pub fn next_sweep_completes_frame(&self) -> bool {
        self.profiler.next_sweep_completes_frame()
    }

    /// Pushes one sweep of baseband samples; returns a frame every
    /// `sweeps_per_frame` sweeps.
    ///
    /// # Panics
    /// Panics if `samples` is not exactly one sweep long.
    pub fn push_sweep(&mut self, samples: &[f64]) -> Option<TofFrame> {
        self.push_inner(Sweep::F64(samples), None)
    }

    /// Pushes one wire-quantized sweep (`sample = q · scale`), keeping
    /// the profile front half in fixed point (see
    /// [`RangeProfiler::push_sweep_q`]).
    ///
    /// # Panics
    /// Panics if `samples` is not exactly one sweep long.
    pub fn push_sweep_q(&mut self, samples: &[i16], scale: f64) -> Option<TofFrame> {
        self.push_inner(Sweep::Q(samples, scale), None)
    }

    /// [`Self::push_sweep`], additionally reporting how long the two
    /// heavy stages took on a frame-completing sweep: range profiling
    /// (the CZT) in `times.profile_ns`, background subtraction +
    /// contour detection + denoising in `times.detect_ns`.
    /// Accumulate-only sweeps leave `times` untouched.
    ///
    /// # Panics
    /// Panics if `samples` is not exactly one sweep long.
    pub fn push_sweep_timed(
        &mut self,
        samples: &[f64],
        times: &mut StageTimes,
    ) -> Option<TofFrame> {
        self.push_inner(Sweep::F64(samples), Some(times))
    }

    /// [`Self::push_sweep_q`] with the stage timing of
    /// [`Self::push_sweep_timed`].
    ///
    /// # Panics
    /// Panics if `samples` is not exactly one sweep long.
    pub fn push_sweep_q_timed(
        &mut self,
        samples: &[i16],
        scale: f64,
        times: &mut StageTimes,
    ) -> Option<TofFrame> {
        self.push_inner(Sweep::Q(samples, scale), Some(times))
    }

    /// Pushes one sweep in either representation.
    ///
    /// # Panics
    /// Panics if the sweep is not exactly one sweep long.
    pub fn push(&mut self, sweep: Sweep<'_>) -> Option<TofFrame> {
        self.push_inner(sweep, None)
    }

    /// Pushes one sweep in either representation, stage-timed.
    ///
    /// # Panics
    /// Panics if the sweep is not exactly one sweep long.
    pub fn push_timed(&mut self, sweep: Sweep<'_>, times: &mut StageTimes) -> Option<TofFrame> {
        self.push_inner(sweep, Some(times))
    }

    fn push_inner(
        &mut self,
        samples: Sweep<'_>,
        mut times: Option<&mut StageTimes>,
    ) -> Option<TofFrame> {
        self.sweeps_seen += 1;
        let profile_start = times
            .as_ref()
            .filter(|_| self.profiler.next_sweep_completes_frame())
            .map(|_| std::time::Instant::now());
        let profile = self.profiler.push(samples)?;
        let detect_start = profile_start.map(|start| {
            let now = std::time::Instant::now();
            if let Some(t) = times.as_deref_mut() {
                t.profile_ns = (now - start).as_nanos().min(u64::MAX as u128) as u64;
            }
            now
        });
        let dt = self.cfg.frame_duration_s();
        let time_s = self.sweeps_seen as f64 * self.cfg.sweep_duration_s;

        let frame = match self.background.push(profile) {
            None => TofFrame {
                frame_index: self.frame_index,
                time_s,
                magnitudes: Vec::new(),
                detection: None,
                denoised: None,
            },
            Some(mags) => {
                let detection = self.contour.detect(mags);
                let denoised = self.denoiser.push(detection.map(|d| d.round_trip_m), dt);
                TofFrame {
                    frame_index: self.frame_index,
                    time_s,
                    magnitudes: mags.to_vec(),
                    detection,
                    denoised,
                }
            }
        };
        if let (Some(start), Some(t)) = (detect_start, times) {
            t.detect_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        }
        self.frame_index += 1;
        Some(frame)
    }

    /// Clears all stream state (baseline, denoiser history, counters).
    pub fn reset(&mut self) {
        self.profiler.reset();
        self.background.reset();
        self.denoiser.reset();
        self.frame_index = 0;
        self.sweeps_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Reduced config so tests run in milliseconds.
    fn small_cfg() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8, // bin = 1.77 m round trip
            sweep_duration_s: 1e-3,
            sample_rate_hz: 250e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        }
    }

    /// Synthesizes one dechirped sweep: a tone per reflector with the
    /// carrier phase term that makes moving targets survive background
    /// subtraction.
    fn sweep(cfg: &SweepConfig, reflectors: &[(f64, f64)]) -> Vec<f64> {
        let n = cfg.samples_per_sweep();
        let mut out = vec![0.0; n];
        for &(round_trip, amp) in reflectors {
            let tau = round_trip / crate::config::SPEED_OF_LIGHT;
            let beat = cfg.beat_for_tof(tau);
            let phase = 2.0 * PI * cfg.start_freq_hz * tau;
            for (i, o) in out.iter_mut().enumerate() {
                let t = i as f64 / cfg.sample_rate_hz;
                *o += amp * (2.0 * PI * beat * t + phase).cos();
            }
        }
        out
    }

    #[test]
    fn static_scene_never_detects() {
        let cfg = small_cfg();
        let mut est = TofEstimator::new(cfg, 60.0);
        let s = sweep(&cfg, &[(10.0, 50.0), (24.0, 80.0)]);
        let mut frames = 0;
        for _ in 0..cfg.sweeps_per_frame * 20 {
            if let Some(f) = est.push_sweep(&s) {
                frames += 1;
                assert!(
                    f.detection.is_none(),
                    "static reflectors must be subtracted away"
                );
            }
        }
        assert_eq!(frames, 20);
    }

    #[test]
    fn moving_target_is_tracked_through_clutter() {
        let cfg = small_cfg();
        let mut est = TofEstimator::new(cfg, 80.0);
        let mut errors = Vec::new();
        let frame_count = 120;
        for f in 0..frame_count {
            // Body walks outward 10 → 12 m round trip behind huge clutter.
            // Frames are 5 ms in this reduced config, so 2 m over 120 frames
            // is a 3.3 m/s round-trip speed — brisk but physical.
            let rt = 10.0 + 2.0 * f as f64 / frame_count as f64;
            for _ in 0..cfg.sweeps_per_frame {
                let s = sweep(&cfg, &[(6.0, 100.0), (30.0, 120.0), (rt, 1.0)]);
                if let Some(out) = est.push_sweep(&s) {
                    if f > 10 {
                        if let Some(d) = out.round_trip_m() {
                            errors.push((d - rt).abs());
                        }
                    }
                }
            }
        }
        assert!(!errors.is_empty(), "tracker produced no estimates");
        let median = witrack_dsp::stats::median(&errors);
        // Bin size is 1.77 m in this reduced config; sub-bin refinement and
        // the Kalman filter should land well under one bin.
        assert!(median < 0.3, "median error {median}");
    }

    #[test]
    fn frame_cadence_and_indices() {
        let cfg = small_cfg();
        let mut est = TofEstimator::new(cfg, 60.0);
        let s = sweep(&cfg, &[(12.0, 10.0)]);
        let mut seen = Vec::new();
        for _ in 0..23 {
            if let Some(f) = est.push_sweep(&s) {
                seen.push(f.frame_index);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn first_frame_has_no_baseline() {
        let cfg = small_cfg();
        let mut est = TofEstimator::new(cfg, 60.0);
        let s = sweep(&cfg, &[(12.0, 10.0)]);
        let mut first = None;
        for _ in 0..cfg.sweeps_per_frame {
            first = est.push_sweep(&s);
        }
        let f = first.unwrap();
        assert!(f.magnitudes.is_empty());
        assert!(f.detection.is_none());
    }

    #[test]
    fn reset_restarts_stream() {
        let cfg = small_cfg();
        let mut est = TofEstimator::new(cfg, 60.0);
        let s = sweep(&cfg, &[(12.0, 10.0)]);
        for _ in 0..cfg.sweeps_per_frame * 3 {
            est.push_sweep(&s);
        }
        est.reset();
        let mut first = None;
        for _ in 0..cfg.sweeps_per_frame {
            first = est.push_sweep(&s);
        }
        let f = first.unwrap();
        assert_eq!(f.frame_index, 0);
        assert!(f.magnitudes.is_empty());
    }

    #[test]
    fn paper_config_tracks_at_fine_resolution() {
        // Full 2500-sample sweeps at the real bandwidth: one frame's worth,
        // verifying the exact-length Bluestein path in context.
        let cfg = SweepConfig::witrack();
        let mut est = TofEstimator::new(cfg, 30.0);
        // Two frames static scene, then the body moves by 5 cm per frame.
        let clutter = [(4.0, 50.0), (9.0, 70.0)];
        let mut detections = Vec::new();
        for f in 0..8 {
            let rt = 12.0 + 0.05 * f as f64;
            for _ in 0..cfg.sweeps_per_frame {
                let mut refl = clutter.to_vec();
                refl.push((rt, 1.0));
                let s = sweep(&cfg, &refl);
                if let Some(out) = est.push_sweep(&s) {
                    if let Some(d) = out.detection {
                        detections.push((d.round_trip_m - rt).abs());
                    }
                }
            }
        }
        assert!(!detections.is_empty());
        let worst = detections.iter().cloned().fold(0.0_f64, f64::max);
        // Within one range bin (0.177 m round trip) of the truth.
        assert!(worst < 0.2, "worst raw detection error {worst}");
    }
}
