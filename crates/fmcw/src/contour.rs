//! Bottom-contour tracking (paper §4.3).
//!
//! After background subtraction only *moving* reflectors remain: the direct
//! body echo plus dynamic multipath (body → wall → antenna). The direct echo
//! always travels the shortest path, so WiTrack tracks "the smallest local
//! frequency maximum that is substantially above the noise floor" rather
//! than the globally strongest return — indirect bounces can be stronger
//! than a through-wall direct path, but they can never be *shorter*.

use crate::config::SweepConfig;
use serde::{Deserialize, Serialize};
use witrack_dsp::peak;

/// Tuning for [`ContourTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContourConfig {
    /// Robust z-score a bin must exceed over the median noise to count as
    /// "substantially above the noise floor".
    pub noise_floor_k: f64,
    /// Bins below this round-trip distance (m) are ignored: the Tx→Rx direct
    /// leak and antenna coupling live there, not targets.
    pub min_round_trip_m: f64,
    /// Absolute floor on detection magnitude, guarding the all-noise case
    /// where median + k·MAD is still tiny.
    pub min_magnitude: f64,
}

impl Default for ContourConfig {
    fn default() -> Self {
        ContourConfig {
            noise_floor_k: 5.0,
            min_round_trip_m: 0.5,
            min_magnitude: 1e-9,
        }
    }
}

/// A per-frame contour detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Sub-bin-refined FFT bin index of the first strong local maximum.
    pub bin: f64,
    /// The corresponding round-trip distance (m).
    pub round_trip_m: f64,
    /// Magnitude of the detected peak (background-subtracted units).
    pub magnitude: f64,
    /// Noise floor the detection was compared against.
    pub noise_floor: f64,
}

/// Extracts the bottom contour from background-subtracted magnitude frames.
#[derive(Debug, Clone)]
pub struct ContourTracker {
    cfg: ContourConfig,
    sweep: SweepConfig,
    min_bin: usize,
    /// Reused noise-floor scratch (`peak::noise_floor_with_scratch`):
    /// the detect family is `&mut self` so the per-frame robust floor
    /// estimate allocates nothing on the serving hot path.
    floor_scratch: Vec<f64>,
}

impl ContourTracker {
    /// Creates a tracker for the given sweep configuration.
    pub fn new(sweep: SweepConfig, cfg: ContourConfig) -> ContourTracker {
        let min_bin = sweep
            .bin_for_round_trip(cfg.min_round_trip_m)
            .floor()
            .max(0.0) as usize;
        ContourTracker {
            cfg,
            sweep,
            min_bin,
            floor_scratch: Vec::new(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &ContourConfig {
        &self.cfg
    }

    /// Finds the bottom contour in one frame of background-subtracted
    /// magnitudes. Returns `None` when no bin rises substantially above the
    /// noise floor (a static scene).
    pub fn detect(&mut self, magnitudes: &[f64]) -> Option<Detection> {
        if magnitudes.len() <= self.min_bin + 2 {
            return None;
        }
        let usable = &magnitudes[self.min_bin..];
        let floor =
            peak::noise_floor_with_scratch(usable, self.cfg.noise_floor_k, &mut self.floor_scratch)
                .max(self.cfg.min_magnitude);
        let rel = peak::first_maximum_above(usable, floor)?;
        let idx = self.min_bin + rel;
        let refined = peak::parabolic_refine(magnitudes, idx);
        Some(Detection {
            bin: refined,
            round_trip_m: self.sweep.round_trip_for_bin(refined),
            magnitude: magnitudes[idx],
            noise_floor: floor,
        })
    }

    /// Multi-target extension of [`detect`](ContourTracker::detect): the
    /// `k` *nearest* local maxima substantially above the noise floor,
    /// nearest first.
    ///
    /// The §4.3 bottom-contour argument generalizes: with N moving bodies,
    /// each body's direct echo is the shortest path *among its own*
    /// echoes, so the N nearest strong maxima are the N direct echoes
    /// whenever the bodies are radially separated (dynamic-multipath
    /// bounces of a nearer body can outrange a farther body's direct echo,
    /// in which case a bounce is reported — the caller's association gates
    /// reject it). Maxima within `min_separation_bins` of an
    /// already-accepted nearer peak are treated as the same reflector's
    /// spectral lobe and skipped.
    ///
    /// `detect(m)` is exactly `detect_top_k(m, 1, 0.0).first()`.
    pub fn detect_top_k(
        &mut self,
        magnitudes: &[f64],
        k: usize,
        min_separation_bins: f64,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        self.detect_top_k_into(magnitudes, k, min_separation_bins, &mut out);
        out
    }

    /// Allocation-free form of [`ContourTracker::detect_top_k`]: clears
    /// `out` and refills it, reusing its capacity across frames.
    pub fn detect_top_k_into(
        &mut self,
        magnitudes: &[f64],
        k: usize,
        min_separation_bins: f64,
        out: &mut Vec<Detection>,
    ) {
        out.clear();
        if k == 0 || magnitudes.len() <= self.min_bin + 2 {
            return;
        }
        let usable = &magnitudes[self.min_bin..];
        let floor =
            peak::noise_floor_with_scratch(usable, self.cfg.noise_floor_k, &mut self.floor_scratch)
                .max(self.cfg.min_magnitude);
        let mut last_accepted: Option<f64> = None;
        for rel in peak::local_maxima_above_iter(usable, floor) {
            let idx = self.min_bin + rel;
            if let Some(prev) = last_accepted {
                if (idx as f64 - prev) < min_separation_bins {
                    continue;
                }
            }
            last_accepted = Some(idx as f64);
            let refined = peak::parabolic_refine(magnitudes, idx);
            out.push(Detection {
                bin: refined,
                round_trip_m: self.sweep.round_trip_for_bin(refined),
                magnitude: magnitudes[idx],
                noise_floor: floor,
            });
            if out.len() == k {
                break;
            }
        }
    }

    /// The §4.3 ablation: track the *strongest* return instead of the
    /// nearest strong one. Kept here so the baseline crate and the contour
    /// share identical thresholds.
    pub fn detect_strongest(&mut self, magnitudes: &[f64]) -> Option<Detection> {
        if magnitudes.len() <= self.min_bin + 2 {
            return None;
        }
        let usable = &magnitudes[self.min_bin..];
        let floor =
            peak::noise_floor_with_scratch(usable, self.cfg.noise_floor_k, &mut self.floor_scratch)
                .max(self.cfg.min_magnitude);
        let rel = peak::global_maximum(usable)?;
        if usable[rel] <= floor {
            return None;
        }
        let idx = self.min_bin + rel;
        let refined = peak::parabolic_refine(magnitudes, idx);
        Some(Detection {
            bin: refined,
            round_trip_m: self.sweep.round_trip_for_bin(refined),
            magnitude: magnitudes[idx],
            noise_floor: floor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SweepConfig {
        SweepConfig::witrack()
    }

    /// Builds a frame with Gaussian lobes at given (bin, amplitude) pairs on
    /// a pseudo-noise floor.
    fn frame(n: usize, lobes: &[(f64, f64)], noise_amp: f64) -> Vec<f64> {
        let mut m: Vec<f64> = (0..n)
            .map(|i| {
                // Deterministic pseudo-noise.
                let x = (i as f64 * 12.9898).sin() * 43758.5453;
                noise_amp * (x - x.floor())
            })
            .collect();
        for &(c, a) in lobes {
            for (i, mi) in m.iter_mut().enumerate() {
                *mi += a * (-((i as f64 - c) / 1.2).powi(2)).exp();
            }
        }
        m
    }

    #[test]
    fn picks_nearest_strong_peak_not_strongest() {
        let sweep = cfg();
        let mut t = ContourTracker::new(sweep, ContourConfig::default());
        // Direct body echo at bin 40 (weak), wall bounce at bin 70 (strong).
        let m = frame(200, &[(40.0, 5.0), (70.0, 20.0)], 0.1);
        let d = t.detect(&m).unwrap();
        assert!((d.bin - 40.0).abs() < 0.5, "bin {}", d.bin);
        let s = t.detect_strongest(&m).unwrap();
        assert!((s.bin - 70.0).abs() < 0.5, "bin {}", s.bin);
        // Round-trip mapping matches the sweep config.
        assert!((d.round_trip_m - sweep.round_trip_for_bin(d.bin)).abs() < 1e-12);
    }

    #[test]
    fn top_k_returns_nearest_first_and_matches_detect() {
        let sweep = cfg();
        let mut t = ContourTracker::new(sweep, ContourConfig::default());
        let m = frame(200, &[(40.0, 5.0), (70.0, 20.0), (120.0, 8.0)], 0.1);
        let dets = t.detect_top_k(&m, 3, 2.0);
        assert_eq!(dets.len(), 3);
        assert!((dets[0].bin - 40.0).abs() < 0.5);
        assert!((dets[1].bin - 70.0).abs() < 0.5);
        assert!((dets[2].bin - 120.0).abs() < 0.5);
        // Nearest-first ordering and agreement with the single-target path.
        assert!(dets.windows(2).all(|w| w[0].bin < w[1].bin));
        let single = t.detect(&m).unwrap();
        assert_eq!(dets[0], single);
        // k truncates nearest-first.
        assert_eq!(t.detect_top_k(&m, 2, 2.0).len(), 2);
        assert!((t.detect_top_k(&m, 1, 2.0)[0].bin - 40.0).abs() < 0.5);
    }

    #[test]
    fn top_k_merges_lobes_within_min_separation() {
        let sweep = cfg();
        let mut t = ContourTracker::new(sweep, ContourConfig::default());
        // Two ripples of one wide reflector at bins 50/52, a real second
        // target at 90.
        let m = frame(200, &[(50.0, 10.0), (52.3, 9.0), (90.0, 8.0)], 0.05);
        let dets = t.detect_top_k(&m, 3, 4.0);
        assert_eq!(dets.len(), 2, "{dets:?}");
        assert!((dets[0].bin - 50.0).abs() < 0.6);
        assert!((dets[1].bin - 90.0).abs() < 0.5);
        // With no separation requirement all three maxima surface.
        assert_eq!(t.detect_top_k(&m, 3, 0.0).len(), 3);
    }

    #[test]
    fn top_k_empty_cases() {
        let mut t = ContourTracker::new(cfg(), ContourConfig::default());
        let m = frame(200, &[(40.0, 5.0)], 0.1);
        assert!(t.detect_top_k(&m, 0, 2.0).is_empty());
        assert!(t.detect_top_k(&[1.0, 2.0], 3, 2.0).is_empty());
        assert!(t.detect_top_k(&vec![0.0; 200], 3, 2.0).is_empty());
    }

    #[test]
    fn all_noise_frame_detects_nothing() {
        let mut t = ContourTracker::new(cfg(), ContourConfig::default());
        let m = frame(200, &[], 0.1);
        assert!(t.detect(&m).is_none());
    }

    #[test]
    fn zero_frame_detects_nothing() {
        let mut t = ContourTracker::new(cfg(), ContourConfig::default());
        assert!(t.detect(&vec![0.0; 200]).is_none());
        assert!(t.detect_strongest(&vec![0.0; 200]).is_none());
    }

    #[test]
    fn self_interference_region_is_ignored() {
        let sweep = cfg();
        let mut t = ContourTracker::new(
            sweep,
            ContourConfig {
                min_round_trip_m: 2.0,
                ..ContourConfig::default()
            },
        );
        let leak_bin = sweep.bin_for_round_trip(0.3);
        let body_bin = sweep.bin_for_round_trip(8.0);
        let m = frame(200, &[(leak_bin, 100.0), (body_bin, 5.0)], 0.1);
        let d = t.detect(&m).unwrap();
        assert!(
            (d.bin - body_bin).abs() < 0.5,
            "bin {} body {}",
            d.bin,
            body_bin
        );
    }

    #[test]
    fn subbin_refinement_beats_integer_bins() {
        let sweep = cfg();
        let mut t = ContourTracker::new(sweep, ContourConfig::default());
        let true_bin = 45.4;
        let m = frame(200, &[(true_bin, 10.0)], 0.05);
        let d = t.detect(&m).unwrap();
        assert!(
            (d.bin - true_bin).abs() < 0.1,
            "refined {} true {}",
            d.bin,
            true_bin
        );
    }

    #[test]
    fn short_frames_are_rejected() {
        let mut t = ContourTracker::new(cfg(), ContourConfig::default());
        assert!(t.detect(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn detection_reports_floor_below_peak() {
        let mut t = ContourTracker::new(cfg(), ContourConfig::default());
        let m = frame(200, &[(50.0, 8.0)], 0.1);
        let d = t.detect(&m).unwrap();
        assert!(d.magnitude > d.noise_floor);
    }
}
