//! Sweep → range profile conversion.
//!
//! Paper §7: *"The signal from each receiving antenna is transformed to the
//! Frequency domain using an FFT whose size matches the FMCW sweep period of
//! 2.5 ms. To improve resilience to noise, every five consecutive sweeps are
//! averaged creating one FFT frame."*
//!
//! Averaging five raw sweeps and transforming once is mathematically
//! identical to averaging five FFTs (the DFT is linear) and 5× cheaper, so
//! [`RangeProfiler`] accumulates sweeps in the time domain. The human is
//! quasi-static over the 12.5 ms window (§4.3), so the body tone adds
//! coherently while noise adds incoherently — the paper's stated reason for
//! averaging.
//!
//! Only `keep_bins` of the sweep's beat-frequency bins can hold an indoor
//! target, so the transform is a zoomed chirp-Z ([`witrack_dsp::Czt`]) that
//! computes exactly those bins — never the full spectrum — and every buffer
//! (accumulator, windowed frame, CZT scratch, output profile) is owned by
//! the profiler and reused, so the steady-state per-frame path performs no
//! heap allocation.

use crate::config::SweepConfig;
use std::sync::Arc;
use witrack_dsp::window::WindowKind;
use witrack_dsp::{Complex, Czt, CztScratch};

/// Converts accumulated sweeps into complex range profiles.
///
/// The window table and CZT plan are **process-shared** (via
/// [`WindowKind::shared`] and [`Czt::shared`]): every profiler at the same
/// sweep configuration — all antennas of all sensors on a serving host —
/// reads one copy of each. Only the per-stream buffers (accumulator,
/// windowed frame, CZT scratch, output profile) are owned per instance.
#[derive(Debug, Clone)]
pub struct RangeProfiler {
    samples_per_sweep: usize,
    sweeps_per_frame: usize,
    /// Shared, unscaled analysis window.
    window: Arc<Vec<f64>>,
    /// The frame average (1/sweeps_per_frame), folded into the windowing
    /// multiply so the shared table stays unscaled.
    frame_scale: f64,
    /// Shared zoom transform producing exactly `keep_bins` bins.
    czt: Arc<Czt>,
    scratch: CztScratch,
    /// Time-domain accumulator for the current frame.
    accum: Vec<f64>,
    /// Windowed average of the accumulated sweeps (CZT input), reused.
    windowed: Vec<f64>,
    /// The emitted range profile, reused across frames.
    profile: Vec<Complex>,
    sweeps_accumulated: usize,
    /// Range profiles hold this many bins (positive beat frequencies only;
    /// indoor scenes need ~200 of the 2500).
    keep_bins: usize,
}

impl RangeProfiler {
    /// Creates a profiler for the given sweep configuration, keeping range
    /// bins up to `max_round_trip_m` of round-trip distance.
    pub fn new(cfg: &SweepConfig, window: WindowKind, max_round_trip_m: f64) -> RangeProfiler {
        let n = cfg.samples_per_sweep();
        let keep = (cfg.bin_for_round_trip(max_round_trip_m).ceil() as usize + 1).min(n / 2);
        let keep = keep.max(2).min(n);
        let window = window.shared(n);
        let czt = Czt::shared(n, keep);
        let scratch = czt.make_scratch();
        RangeProfiler {
            samples_per_sweep: n,
            sweeps_per_frame: cfg.sweeps_per_frame,
            window,
            frame_scale: 1.0 / cfg.sweeps_per_frame as f64,
            czt,
            scratch,
            accum: vec![0.0; n],
            windowed: vec![0.0; n],
            profile: vec![Complex::ZERO; keep],
            sweeps_accumulated: 0,
            keep_bins: keep,
        }
    }

    /// Number of range bins kept in each profile.
    pub fn keep_bins(&self) -> usize {
        self.keep_bins
    }

    /// The shared zoom-transform plan this profiler runs (two profilers at
    /// the same sweep configuration return the same `Arc`).
    pub fn plan(&self) -> &Arc<Czt> {
        &self.czt
    }

    /// Sweeps accumulated toward the next frame.
    pub fn pending_sweeps(&self) -> usize {
        self.sweeps_accumulated
    }

    /// Whether the *next* [`RangeProfiler::push_sweep`] will complete a
    /// frame — lets multi-antenna drivers fan the heavy frame work out to
    /// threads only when there is frame work to do.
    pub fn next_sweep_completes_frame(&self) -> bool {
        self.sweeps_accumulated + 1 == self.sweeps_per_frame
    }

    /// Pushes one sweep of baseband samples. Returns the complex range
    /// profile when this sweep completes a frame, `None` otherwise. The
    /// returned slice borrows the profiler's reusable output buffer (valid
    /// until the next call); steady-state calls never allocate.
    ///
    /// # Panics
    /// Panics if `samples` is not exactly one sweep long.
    pub fn push_sweep(&mut self, samples: &[f64]) -> Option<&[Complex]> {
        assert_eq!(
            samples.len(),
            self.samples_per_sweep,
            "sweep must contain exactly samples_per_sweep samples"
        );
        for (a, &s) in self.accum.iter_mut().zip(samples) {
            *a += s;
        }
        self.sweeps_accumulated += 1;
        if self.sweeps_accumulated < self.sweeps_per_frame {
            return None;
        }
        // Frame complete: window the averaged sweeps, zoom-transform the
        // kept band, reset the accumulator. (The 1/sweeps_per_frame average
        // folds into the windowing multiply; the table itself is shared.)
        let scale = self.frame_scale;
        for ((w, &a), &win) in self
            .windowed
            .iter_mut()
            .zip(&self.accum)
            .zip(self.window.iter())
        {
            *w = a * win * scale;
        }
        self.czt
            .transform_into(&self.windowed, &mut self.profile, &mut self.scratch);
        self.accum.fill(0.0);
        self.sweeps_accumulated = 0;
        Some(&self.profile)
    }

    /// Clears any partially accumulated frame.
    pub fn reset(&mut self) {
        self.accum.fill(0.0);
        self.sweeps_accumulated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn small_cfg() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e6,
            bandwidth_hz: 1.69e6,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 256e3,
            sweeps_per_frame: 4,
            transmit_power_w: 1e-3,
        }
    }

    fn tone_sweep(cfg: &SweepConfig, beat_hz: f64, phase: f64) -> Vec<f64> {
        let n = cfg.samples_per_sweep();
        (0..n)
            .map(|i| {
                let t = i as f64 / cfg.sample_rate_hz;
                (2.0 * PI * beat_hz * t + phase).cos()
            })
            .collect()
    }

    #[test]
    fn frame_emitted_every_n_sweeps() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let sweep = tone_sweep(&cfg, 10e3, 0.0);
        for k in 0..3 {
            assert!(
                p.push_sweep(&sweep).is_none(),
                "sweep {k} should not complete a frame"
            );
            assert_eq!(p.pending_sweeps(), k + 1);
        }
        assert!(p.push_sweep(&sweep).is_some());
        assert_eq!(p.pending_sweeps(), 0);
    }

    #[test]
    fn tone_lands_in_the_right_bin() {
        let cfg = small_cfg();
        // Choose a beat exactly on a bin: bin spacing = 1 kHz.
        let bin = 12.0;
        let beat = bin * cfg.bin_spacing_hz();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let sweep = tone_sweep(&cfg, beat, 0.3);
        for _ in 0..cfg.sweeps_per_frame - 1 {
            assert!(p.push_sweep(&sweep).is_none());
        }
        let profile = p.push_sweep(&sweep).unwrap();
        let mags: Vec<f64> = profile.iter().map(|z| z.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, bin as usize);
    }

    #[test]
    fn coherent_averaging_boosts_snr() {
        let cfg = small_cfg();
        let bin = 9.0;
        let beat = bin * cfg.bin_spacing_hz();
        // Identical tone in all sweeps + per-sweep alternating-sign "noise"
        // at another bin. Coherent tone stays; alternating noise cancels.
        let mut p = RangeProfiler::new(&cfg, WindowKind::Rectangular, cfg.round_trip_for_bin(40.0));
        let tone = tone_sweep(&cfg, beat, 0.0);
        let noise_tone = tone_sweep(&cfg, 20.0 * cfg.bin_spacing_hz(), 0.0);
        let mut mags = Vec::new();
        for k in 0..cfg.sweeps_per_frame {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            let sweep: Vec<f64> = tone
                .iter()
                .zip(&noise_tone)
                .map(|(&t, &n)| t + sign * n)
                .collect();
            if let Some(profile) = p.push_sweep(&sweep) {
                mags = profile.iter().map(|z| z.abs()).collect();
            }
        }
        assert!(!mags.is_empty(), "frame never completed");
        assert!(
            mags[9] > 50.0 * mags[20],
            "coherent {} incoherent {}",
            mags[9],
            mags[20]
        );
    }

    #[test]
    fn profiles_are_truncated_to_keep_bins() {
        let cfg = small_cfg();
        let max_rt = cfg.round_trip_for_bin(25.0);
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, max_rt);
        assert!(p.keep_bins() <= 27);
        let sweep = tone_sweep(&cfg, 5e3, 0.0);
        for _ in 0..cfg.sweeps_per_frame - 1 {
            assert!(p.push_sweep(&sweep).is_none());
        }
        let keep = p.keep_bins();
        assert_eq!(p.push_sweep(&sweep).unwrap().len(), keep);
    }

    #[test]
    fn zoom_transform_matches_full_fft_then_truncate() {
        // The pre-CZT production path: full-length FFT, truncate to keep.
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let n = cfg.samples_per_sweep();
        let sweep = tone_sweep(&cfg, 7.3 * cfg.bin_spacing_hz(), 0.9);
        let window = WindowKind::Hann.generate(n);
        let windowed: Vec<f64> = sweep.iter().zip(&window).map(|(&s, &w)| s * w).collect();
        let mut reference = witrack_dsp::Fft::new(n).forward_real(&windowed);
        reference.truncate(p.keep_bins());
        for _ in 0..cfg.sweeps_per_frame - 1 {
            p.push_sweep(&sweep);
        }
        let profile = p.push_sweep(&sweep).unwrap();
        for (i, (a, b)) in profile.iter().zip(&reference).enumerate() {
            assert!((*a - *b).abs() < 1e-9 * n as f64, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn steady_state_reuses_output_buffer() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let sweep = tone_sweep(&cfg, 10e3, 0.0);
        let mut ptrs = Vec::new();
        for _ in 0..3 * cfg.sweeps_per_frame {
            if let Some(profile) = p.push_sweep(&sweep) {
                ptrs.push(profile.as_ptr());
            }
        }
        assert_eq!(ptrs.len(), 3);
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "profile buffer reallocated"
        );
    }

    #[test]
    fn profilers_at_one_config_share_one_plan() {
        let cfg = small_cfg();
        let a = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let b = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        assert!(
            std::sync::Arc::ptr_eq(a.plan(), b.plan()),
            "same sweep config must share one CZT plan"
        );
        // And the shared plan still produces per-stream-independent output.
        let mut a = a;
        let mut b = b;
        let s1 = tone_sweep(&cfg, 10e3, 0.0);
        let s2 = tone_sweep(&cfg, 14e3, 0.4);
        let mut last = (Vec::new(), Vec::new());
        for _ in 0..cfg.sweeps_per_frame {
            if let Some(p) = a.push_sweep(&s1) {
                last.0 = p.to_vec();
            }
            if let Some(p) = b.push_sweep(&s2) {
                last.1 = p.to_vec();
            }
        }
        assert!(!last.0.is_empty() && !last.1.is_empty());
        assert_ne!(last.0, last.1, "independent streams, independent output");
    }

    #[test]
    fn reset_discards_partial_frame() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let sweep = tone_sweep(&cfg, 10e3, 0.0);
        p.push_sweep(&sweep);
        p.push_sweep(&sweep);
        p.reset();
        assert_eq!(p.pending_sweeps(), 0);
        for k in 0..cfg.sweeps_per_frame - 1 {
            assert!(p.push_sweep(&sweep).is_none(), "sweep {k}");
        }
        assert!(p.push_sweep(&sweep).is_some());
    }

    #[test]
    #[should_panic]
    fn wrong_sweep_length_panics() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        p.push_sweep(&[0.0; 10]);
    }
}
