//! Sweep → range profile conversion.
//!
//! Paper §7: *"The signal from each receiving antenna is transformed to the
//! Frequency domain using an FFT whose size matches the FMCW sweep period of
//! 2.5 ms. To improve resilience to noise, every five consecutive sweeps are
//! averaged creating one FFT frame."*
//!
//! Averaging five raw sweeps and transforming once is mathematically
//! identical to averaging five FFTs (the DFT is linear) and 5× cheaper, so
//! [`RangeProfiler`] accumulates sweeps in the time domain. The human is
//! quasi-static over the 12.5 ms window (§4.3), so the body tone adds
//! coherently while noise adds incoherently — the paper's stated reason for
//! averaging.
//!
//! Only `keep_bins` of the sweep's beat-frequency bins can hold an indoor
//! target, so the transform is a zoomed chirp-Z ([`witrack_dsp::Czt`]) that
//! computes exactly those bins — never the full spectrum — and every buffer
//! (accumulator, windowed frame, CZT scratch, output profile) is owned by
//! the profiler and reused, so the steady-state per-frame path performs no
//! heap allocation.

use crate::config::SweepConfig;
use std::sync::Arc;
use witrack_dsp::window::{WindowKind, Q15_GAIN};
use witrack_dsp::{simd, Complex, Czt, CztScratch};

/// One sweep of baseband samples, in either representation the wire
/// delivers: dequantized `f64`, or the raw `i16` quantized form plus its
/// dequantization scale (`sample = q · scale`). The quantized form feeds
/// the fixed-point front half of the profiler — windowing and frame
/// accumulation stay in `i16`/`i32` and the samples only become floats
/// inside the zoom transform's pre-chirp multiply.
#[derive(Debug, Clone, Copy)]
pub enum Sweep<'a> {
    /// Float samples.
    F64(&'a [f64]),
    /// Wire-quantized samples and their dequantization scale.
    Q(&'a [i16], f64),
}

impl<'a> From<&'a [f64]> for Sweep<'a> {
    fn from(samples: &'a [f64]) -> Sweep<'a> {
        Sweep::F64(samples)
    }
}

impl Sweep<'_> {
    /// Number of samples in the sweep.
    pub fn len(&self) -> usize {
        match self {
            Sweep::F64(s) => s.len(),
            Sweep::Q(s, _) => s.len(),
        }
    }

    /// `true` when the sweep holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Converts accumulated sweeps into complex range profiles.
///
/// The window table and CZT plan are **process-shared** (via
/// [`WindowKind::shared`] and [`Czt::shared`]): every profiler at the same
/// sweep configuration — all antennas of all sensors on a serving host —
/// reads one copy of each. Only the per-stream buffers (accumulator,
/// windowed frame, CZT scratch, output profile) are owned per instance.
#[derive(Debug, Clone)]
pub struct RangeProfiler {
    samples_per_sweep: usize,
    sweeps_per_frame: usize,
    /// Shared, unscaled analysis window.
    window: Arc<Vec<f64>>,
    /// Shared Q15 window table for the fixed-point path.
    window_q15: Arc<Vec<i16>>,
    /// The frame average (1/sweeps_per_frame), folded into the windowing
    /// multiply so the shared table stays unscaled.
    frame_scale: f64,
    /// Shared zoom transform producing exactly `keep_bins` bins.
    czt: Arc<Czt>,
    scratch: CztScratch,
    /// Time-domain accumulator for the current frame (float sweeps).
    accum: Vec<f64>,
    /// Fixed-point accumulator for quantized sweeps: windowed Q15
    /// products summed exactly in `i32` (5 sweeps × ±32767 is nowhere
    /// near overflow).
    accum_q: Vec<i32>,
    /// Wire scale the quantized accumulator is denominated in.
    accum_q_scale: f64,
    /// Quantized sweeps folded into the current frame so far.
    q_sweeps: usize,
    /// Windowed average of the accumulated sweeps (CZT input), reused.
    windowed: Vec<f64>,
    /// The emitted range profile, reused across frames.
    profile: Vec<Complex>,
    sweeps_accumulated: usize,
    /// Range profiles hold this many bins (positive beat frequencies only;
    /// indoor scenes need ~200 of the 2500).
    keep_bins: usize,
}

impl RangeProfiler {
    /// Creates a profiler for the given sweep configuration, keeping range
    /// bins up to `max_round_trip_m` of round-trip distance.
    pub fn new(cfg: &SweepConfig, window: WindowKind, max_round_trip_m: f64) -> RangeProfiler {
        let n = cfg.samples_per_sweep();
        let keep = (cfg.bin_for_round_trip(max_round_trip_m).ceil() as usize + 1).min(n / 2);
        let keep = keep.max(2).min(n);
        let window_q15 = window.shared_q15(n);
        let window = window.shared(n);
        let czt = Czt::shared(n, keep);
        let scratch = czt.make_scratch();
        RangeProfiler {
            samples_per_sweep: n,
            sweeps_per_frame: cfg.sweeps_per_frame,
            window,
            window_q15,
            frame_scale: 1.0 / cfg.sweeps_per_frame as f64,
            czt,
            scratch,
            accum: vec![0.0; n],
            accum_q: vec![0; n],
            accum_q_scale: 0.0,
            q_sweeps: 0,
            windowed: vec![0.0; n],
            profile: vec![Complex::ZERO; keep],
            sweeps_accumulated: 0,
            keep_bins: keep,
        }
    }

    /// Number of range bins kept in each profile.
    pub fn keep_bins(&self) -> usize {
        self.keep_bins
    }

    /// The shared zoom-transform plan this profiler runs (two profilers at
    /// the same sweep configuration return the same `Arc`).
    pub fn plan(&self) -> &Arc<Czt> {
        &self.czt
    }

    /// Sweeps accumulated toward the next frame.
    pub fn pending_sweeps(&self) -> usize {
        self.sweeps_accumulated
    }

    /// Whether the *next* [`RangeProfiler::push_sweep`] will complete a
    /// frame — lets multi-antenna drivers fan the heavy frame work out to
    /// threads only when there is frame work to do.
    pub fn next_sweep_completes_frame(&self) -> bool {
        self.sweeps_accumulated + 1 == self.sweeps_per_frame
    }

    /// Pushes one sweep of baseband samples. Returns the complex range
    /// profile when this sweep completes a frame, `None` otherwise. The
    /// returned slice borrows the profiler's reusable output buffer (valid
    /// until the next call); steady-state calls never allocate.
    ///
    /// # Panics
    /// Panics if `samples` is not exactly one sweep long.
    pub fn push_sweep(&mut self, samples: &[f64]) -> Option<&[Complex]> {
        self.push(Sweep::F64(samples))
    }

    /// Pushes one **wire-quantized** sweep (`sample = q · scale`). The
    /// fixed-point fast path: the sweep is windowed in `i16` (Q15
    /// rounding multiplies against the shared quantized window table) and
    /// accumulated exactly in `i32`; on frame completion the integer
    /// accumulator feeds the zoom transform directly, dequantizing inside
    /// the pre-chirp multiply. Per-frame the samples are touched once in
    /// integer form — 4× less accumulator memory traffic than the float
    /// path, and no dequantized copy of the frame ever exists.
    ///
    /// # Panics
    /// Panics if `samples` is not exactly one sweep long.
    pub fn push_sweep_q(&mut self, samples: &[i16], scale: f64) -> Option<&[Complex]> {
        self.push(Sweep::Q(samples, scale))
    }

    /// Pushes one sweep in either representation. See
    /// [`RangeProfiler::push_sweep`] / [`RangeProfiler::push_sweep_q`].
    ///
    /// # Panics
    /// Panics if the sweep is not exactly one sweep long.
    pub fn push(&mut self, sweep: Sweep<'_>) -> Option<&[Complex]> {
        assert_eq!(
            sweep.len(),
            self.samples_per_sweep,
            "sweep must contain exactly samples_per_sweep samples"
        );
        match sweep {
            Sweep::F64(samples) => {
                for (a, &s) in self.accum.iter_mut().zip(samples) {
                    *a += s;
                }
            }
            // A quantized sweep at the frame's established wire scale
            // stays integer end to end. The first quantized sweep of a
            // frame establishes that scale; a mid-frame scale change
            // (rare — encoders quantize per batch, and a batch is a whole
            // frame) folds the odd sweep into the float accumulator
            // instead of degrading the integer one.
            Sweep::Q(samples, scale) => {
                if self.q_sweeps == 0 {
                    self.accum_q_scale = scale;
                }
                if scale == self.accum_q_scale {
                    simd::window_accum_q(&mut self.accum_q, samples, &self.window_q15);
                    self.q_sweeps += 1;
                } else {
                    for (a, &s) in self.accum.iter_mut().zip(samples) {
                        *a += s as f64 * scale;
                    }
                }
            }
        }
        self.sweeps_accumulated += 1;
        if self.sweeps_accumulated < self.sweeps_per_frame {
            return None;
        }
        self.complete_frame();
        Some(&self.profile)
    }

    /// Frame complete: window the averaged sweeps, zoom-transform the
    /// kept band, reset the accumulators. (The 1/sweeps_per_frame average
    /// folds into the windowing — or dequantization — multiply; the
    /// shared tables stay unscaled.)
    fn complete_frame(&mut self) {
        let scale = self.frame_scale;
        // Dequantization scale of the integer accumulator: wire scale ×
        // frame average × the Q15 window tables' uniform gain correction.
        let q_scale = self.accum_q_scale * scale * Q15_GAIN;
        if self.q_sweeps == self.sweeps_accumulated {
            // Pure quantized frame (the serving hot path): the integer
            // accumulator is already windowed; hand it straight to the
            // transform, which dequantizes inside the pre-chirp multiply.
            self.czt
                .transform_q_into(&self.accum_q, q_scale, &mut self.profile, &mut self.scratch);
        } else {
            simd::window_scale(&mut self.windowed, &self.accum, &self.window, scale);
            if self.q_sweeps > 0 {
                // Mixed frame: the quantized part is windowed already.
                for (w, &q) in self.windowed.iter_mut().zip(&self.accum_q) {
                    *w += q as f64 * q_scale;
                }
            }
            self.czt
                .transform_into(&self.windowed, &mut self.profile, &mut self.scratch);
        }
        self.clear_accumulators();
    }

    fn clear_accumulators(&mut self) {
        // Only touch the accumulator(s) this frame actually dirtied — a
        // pure quantized frame must not pay a 20 KB float memset.
        if self.q_sweeps > 0 {
            self.accum_q.fill(0);
        }
        if self.q_sweeps < self.sweeps_accumulated {
            self.accum.fill(0.0);
        }
        self.q_sweeps = 0;
        self.accum_q_scale = 0.0;
        self.sweeps_accumulated = 0;
    }

    /// Clears any partially accumulated frame.
    pub fn reset(&mut self) {
        self.clear_accumulators();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn small_cfg() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e6,
            bandwidth_hz: 1.69e6,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 256e3,
            sweeps_per_frame: 4,
            transmit_power_w: 1e-3,
        }
    }

    fn tone_sweep(cfg: &SweepConfig, beat_hz: f64, phase: f64) -> Vec<f64> {
        let n = cfg.samples_per_sweep();
        (0..n)
            .map(|i| {
                let t = i as f64 / cfg.sample_rate_hz;
                (2.0 * PI * beat_hz * t + phase).cos()
            })
            .collect()
    }

    #[test]
    fn frame_emitted_every_n_sweeps() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let sweep = tone_sweep(&cfg, 10e3, 0.0);
        for k in 0..3 {
            assert!(
                p.push_sweep(&sweep).is_none(),
                "sweep {k} should not complete a frame"
            );
            assert_eq!(p.pending_sweeps(), k + 1);
        }
        assert!(p.push_sweep(&sweep).is_some());
        assert_eq!(p.pending_sweeps(), 0);
    }

    #[test]
    fn tone_lands_in_the_right_bin() {
        let cfg = small_cfg();
        // Choose a beat exactly on a bin: bin spacing = 1 kHz.
        let bin = 12.0;
        let beat = bin * cfg.bin_spacing_hz();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let sweep = tone_sweep(&cfg, beat, 0.3);
        for _ in 0..cfg.sweeps_per_frame - 1 {
            assert!(p.push_sweep(&sweep).is_none());
        }
        let profile = p.push_sweep(&sweep).unwrap();
        let mags: Vec<f64> = profile.iter().map(|z| z.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, bin as usize);
    }

    #[test]
    fn coherent_averaging_boosts_snr() {
        let cfg = small_cfg();
        let bin = 9.0;
        let beat = bin * cfg.bin_spacing_hz();
        // Identical tone in all sweeps + per-sweep alternating-sign "noise"
        // at another bin. Coherent tone stays; alternating noise cancels.
        let mut p = RangeProfiler::new(&cfg, WindowKind::Rectangular, cfg.round_trip_for_bin(40.0));
        let tone = tone_sweep(&cfg, beat, 0.0);
        let noise_tone = tone_sweep(&cfg, 20.0 * cfg.bin_spacing_hz(), 0.0);
        let mut mags = Vec::new();
        for k in 0..cfg.sweeps_per_frame {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            let sweep: Vec<f64> = tone
                .iter()
                .zip(&noise_tone)
                .map(|(&t, &n)| t + sign * n)
                .collect();
            if let Some(profile) = p.push_sweep(&sweep) {
                mags = profile.iter().map(|z| z.abs()).collect();
            }
        }
        assert!(!mags.is_empty(), "frame never completed");
        assert!(
            mags[9] > 50.0 * mags[20],
            "coherent {} incoherent {}",
            mags[9],
            mags[20]
        );
    }

    #[test]
    fn profiles_are_truncated_to_keep_bins() {
        let cfg = small_cfg();
        let max_rt = cfg.round_trip_for_bin(25.0);
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, max_rt);
        assert!(p.keep_bins() <= 27);
        let sweep = tone_sweep(&cfg, 5e3, 0.0);
        for _ in 0..cfg.sweeps_per_frame - 1 {
            assert!(p.push_sweep(&sweep).is_none());
        }
        let keep = p.keep_bins();
        assert_eq!(p.push_sweep(&sweep).unwrap().len(), keep);
    }

    #[test]
    fn zoom_transform_matches_full_fft_then_truncate() {
        // The pre-CZT production path: full-length FFT, truncate to keep.
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let n = cfg.samples_per_sweep();
        let sweep = tone_sweep(&cfg, 7.3 * cfg.bin_spacing_hz(), 0.9);
        let window = WindowKind::Hann.generate(n);
        let windowed: Vec<f64> = sweep.iter().zip(&window).map(|(&s, &w)| s * w).collect();
        let mut reference = witrack_dsp::Fft::new(n).forward_real(&windowed);
        reference.truncate(p.keep_bins());
        for _ in 0..cfg.sweeps_per_frame - 1 {
            p.push_sweep(&sweep);
        }
        let profile = p.push_sweep(&sweep).unwrap();
        for (i, (a, b)) in profile.iter().zip(&reference).enumerate() {
            assert!((*a - *b).abs() < 1e-9 * n as f64, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn steady_state_reuses_output_buffer() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let sweep = tone_sweep(&cfg, 10e3, 0.0);
        let mut ptrs = Vec::new();
        for _ in 0..3 * cfg.sweeps_per_frame {
            if let Some(profile) = p.push_sweep(&sweep) {
                ptrs.push(profile.as_ptr());
            }
        }
        assert_eq!(ptrs.len(), 3);
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "profile buffer reallocated"
        );
    }

    #[test]
    fn profilers_at_one_config_share_one_plan() {
        let cfg = small_cfg();
        let a = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let b = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        assert!(
            std::sync::Arc::ptr_eq(a.plan(), b.plan()),
            "same sweep config must share one CZT plan"
        );
        // And the shared plan still produces per-stream-independent output.
        let mut a = a;
        let mut b = b;
        let s1 = tone_sweep(&cfg, 10e3, 0.0);
        let s2 = tone_sweep(&cfg, 14e3, 0.4);
        let mut last = (Vec::new(), Vec::new());
        for _ in 0..cfg.sweeps_per_frame {
            if let Some(p) = a.push_sweep(&s1) {
                last.0 = p.to_vec();
            }
            if let Some(p) = b.push_sweep(&s2) {
                last.1 = p.to_vec();
            }
        }
        assert!(!last.0.is_empty() && !last.1.is_empty());
        assert_ne!(last.0, last.1, "independent streams, independent output");
    }

    #[test]
    fn reset_discards_partial_frame() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        let sweep = tone_sweep(&cfg, 10e3, 0.0);
        p.push_sweep(&sweep);
        p.push_sweep(&sweep);
        p.reset();
        assert_eq!(p.pending_sweeps(), 0);
        for k in 0..cfg.sweeps_per_frame - 1 {
            assert!(p.push_sweep(&sweep).is_none(), "sweep {k}");
        }
        assert!(p.push_sweep(&sweep).is_some());
    }

    /// Quantizes a sweep the way the wire does (peak → ±32767).
    fn quantize(sweep: &[f64]) -> (Vec<i16>, f64) {
        let peak = sweep.iter().fold(0.0f64, |m, &s| m.max(s.abs())).max(1e-30);
        let scale = peak / 32767.0;
        (
            sweep.iter().map(|&s| (s / scale).round() as i16).collect(),
            scale,
        )
    }

    #[test]
    fn quantized_path_matches_float_path() {
        let cfg = small_cfg();
        let mut pf = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let mut pq = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let mut out = (Vec::new(), Vec::new());
        for k in 0..2 * cfg.sweeps_per_frame {
            let sweep = tone_sweep(&cfg, 11e3, 0.1 * k as f64);
            let (q, scale) = quantize(&sweep);
            let dequant: Vec<f64> = q.iter().map(|&v| v as f64 * scale).collect();
            if let Some(p) = pf.push_sweep(&dequant) {
                out.0 = p.to_vec();
            }
            if let Some(p) = pq.push_sweep_q(&q, scale) {
                out.1 = p.to_vec();
            }
        }
        assert!(!out.0.is_empty() && !out.1.is_empty());
        // Both paths see identical wire samples; the only differences are
        // the Q15 window rounding (≤ 1.5e-5 relative) and summation
        // order. The peak magnitude is O(n/2); bound the per-bin error
        // relative to that.
        let n = cfg.samples_per_sweep() as f64;
        for (i, (a, b)) in out.0.iter().zip(&out.1).enumerate() {
            assert!((*a - *b).abs() < 1e-4 * n, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn mixed_and_rescaled_frames_still_match() {
        // One frame mixing a float sweep, quantized sweeps at the frame's
        // wire scale, and a quantized sweep at a DIFFERENT wire scale (a
        // mid-frame AGC step) must agree with a float reference fed the
        // dequantized equivalents of the exact same samples.
        let cfg = small_cfg();
        let mut pf = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let mut pq = RangeProfiler::new(&cfg, WindowKind::Hann, cfg.round_trip_for_bin(40.0));
        let mut out = (Vec::new(), Vec::new());
        for k in 0..cfg.sweeps_per_frame {
            let sweep = tone_sweep(&cfg, 9e3, 0.2 * k as f64);
            let (mut q, mut scale) = quantize(&sweep);
            if k == 2 {
                // Same physical samples, coarser wire scale.
                for v in &mut q {
                    *v /= 2;
                }
                scale *= 2.0;
            }
            let dequant: Vec<f64> = q.iter().map(|&v| v as f64 * scale).collect();
            if let Some(p) = pf.push_sweep(&dequant) {
                out.0 = p.to_vec();
            }
            let r = if k == 1 {
                pq.push_sweep(&dequant)
            } else {
                pq.push_sweep_q(&q, scale)
            };
            if let Some(p) = r {
                out.1 = p.to_vec();
            }
        }
        assert!(!out.0.is_empty() && !out.1.is_empty());
        let n = cfg.samples_per_sweep() as f64;
        for (i, (a, b)) in out.0.iter().zip(&out.1).enumerate() {
            assert!((*a - *b).abs() < 1e-4 * n, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic]
    fn wrong_sweep_length_panics() {
        let cfg = small_cfg();
        let mut p = RangeProfiler::new(&cfg, WindowKind::Hann, 50.0);
        p.push_sweep(&[0.0; 10]);
    }
}
