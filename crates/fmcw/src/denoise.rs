//! Contour de-noising (paper §4.4): outlier rejection, interpolation during
//! motion gaps, and Kalman smoothing — composed in the paper's order.

use serde::{Deserialize, Serialize};
use witrack_dsp::filters::{HoldInterpolator, OutlierGate};
use witrack_dsp::kalman::{Kalman1D, KalmanConfig};

/// Tuning for [`DistanceDenoiser`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenoiseConfig {
    /// Maximum plausible round-trip speed (m/s). Round-trip distance changes
    /// at up to twice the body speed; indoor motion stays below ~3 m/s, so
    /// the default gate is 8 m/s with margin.
    pub max_round_trip_speed: f64,
    /// Consecutive rejections after which the gate re-seeds (the contour
    /// may have legitimately locked onto a new target position).
    pub max_consecutive_rejects: usize,
    /// Kalman measurement noise, in meters of round-trip distance.
    pub measurement_std: f64,
    /// Kalman process acceleration noise (m/s²).
    pub process_accel_std: f64,
    /// After this many held frames, a lone detection is treated as noise:
    /// this many *consecutive* detections are required to break the hold.
    pub reacquire_frames: usize,
}

impl Default for DenoiseConfig {
    fn default() -> Self {
        DenoiseConfig {
            // The §4.4 rule targets *meters* of jump in milliseconds; the
            // raw contour also jitters frame-to-frame as the specular point
            // wanders over the torso (~0.1 m at 80 fps ≈ 10 m/s implied),
            // which must pass the gate.
            max_round_trip_speed: 20.0,
            max_consecutive_rejects: 16,
            // Raw contour detections sit at ~4 cm error with the paper's
            // bandwidth, and walking swings the round trip at up to ±2 m/s
            // with quick reversals: a sluggish filter (low process noise)
            // lags by tens of centimeters, which geometry then amplifies
            // ~(range/separation)× into x and z. These defaults keep the
            // steady-state lag under ~8 cm while still rejecting jitter.
            measurement_std: 0.06,
            process_accel_std: 12.0,
            reacquire_frames: 3,
        }
    }
}

/// One denoised sample of the round-trip distance stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenoisedDistance {
    /// Smoothed round-trip distance (m).
    pub round_trip_m: f64,
    /// Estimated round-trip velocity (m/s) from the Kalman state.
    pub velocity_mps: f64,
    /// `true` when this sample is held/interpolated rather than measured
    /// (person static, §4.4 "Interpolation").
    pub held: bool,
}

/// The §4.4 denoising stack for one antenna's contour stream.
#[derive(Debug, Clone)]
pub struct DistanceDenoiser {
    cfg: DenoiseConfig,
    gate: OutlierGate,
    hold: HoldInterpolator,
    kalman: Kalman1D,
    /// Recent accepted raw detections. Interpolation holds their median:
    /// lag-free (unlike the Kalman output, which trails fast motion right
    /// when the person stops) yet robust to specular-wander jitter (unlike
    /// the single last detection).
    recent_raw: std::collections::VecDeque<f64>,
    /// Value being held during an interpolation stretch.
    held_value: Option<f64>,
    /// Consecutive detections seen while trying to break a long hold.
    reacquire_run: usize,
}

impl DistanceDenoiser {
    /// Creates a denoiser.
    pub fn new(cfg: DenoiseConfig) -> DistanceDenoiser {
        DistanceDenoiser {
            cfg,
            gate: OutlierGate::new(cfg.max_round_trip_speed, cfg.max_consecutive_rejects),
            hold: HoldInterpolator::new(),
            kalman: Kalman1D::new(KalmanConfig {
                measurement_std: cfg.measurement_std,
                process_accel_std: cfg.process_accel_std,
                ..KalmanConfig::default()
            }),
            recent_raw: std::collections::VecDeque::new(),
            held_value: None,
            reacquire_run: 0,
        }
    }

    /// Pushes one frame's contour measurement (`None` when the contour found
    /// nothing — no motion). `dt` is the frame period in seconds. Returns
    /// the denoised distance once the stream has been seeded.
    pub fn push(&mut self, raw: Option<f64>, dt: f64) -> Option<DenoisedDistance> {
        // Stage 1: outlier rejection. A rejected sample is treated like a
        // missing one — the hold stage bridges it. When the gate re-seeds
        // (the contour has persistently moved somewhere new), the Kalman
        // history describes a stale position, so it restarts too.
        let gated = match raw {
            None => None,
            Some(v) => match self.gate.push(v, dt) {
                witrack_dsp::filters::GateDecision::Accepted(x) => Some(x),
                witrack_dsp::filters::GateDecision::Reseeded(x) => {
                    self.kalman.reset();
                    Some(x)
                }
                witrack_dsp::filters::GateDecision::Rejected { .. } => None,
            },
        };

        // Re-acquisition hysteresis: after a long hold, a lone detection is
        // far more likely to be a noise peak crossing the contour threshold
        // than the person resuming — and accepting it would corrupt the
        // held position permanently. Require a short run of consecutive
        // detections to break a long hold.
        // Only *long* holds (a genuinely static person, ~0.3 s+) demand
        // confirmation; brief detection flicker while walking must re-lock
        // instantly or holds would snowball.
        let long_hold = self.hold.held_frames() >= 8 * self.cfg.reacquire_frames.max(1);
        let gated = match gated {
            Some(v) if long_hold => {
                self.reacquire_run += 1;
                if self.reacquire_run >= self.cfg.reacquire_frames.max(1) {
                    Some(v)
                } else {
                    None
                }
            }
            other => {
                if other.is_none() {
                    self.reacquire_run = 0;
                }
                other
            }
        };

        // Stage 2: interpolation over gaps.
        let held = gated.is_none();
        let value = self.hold.push(gated)?;

        // Stage 3: Kalman smoothing — for measured frames only. A held
        // frame means "the person stopped"; the paper interpolates the
        // latest estimate *unchanged* (§4.4). Hold the median of the recent
        // raw detections: the Kalman output trails fast motion exactly when
        // the person stops, while the median is lag-free and jitter-robust.
        let smoothed = if held {
            let v = *self.held_value.get_or_insert_with(|| {
                if self.recent_raw.is_empty() {
                    value
                } else {
                    let mut vals: Vec<f64> = self.recent_raw.iter().copied().collect();
                    witrack_dsp::stats::median_in_place(&mut vals)
                }
            });
            self.kalman.hold_at(v);
            v
        } else {
            self.held_value = None;
            self.recent_raw.push_back(value);
            if self.recent_raw.len() > 5 {
                self.recent_raw.pop_front();
            }
            self.kalman.update(value, dt)
        };

        Some(DenoisedDistance {
            round_trip_m: smoothed,
            velocity_mps: self.kalman.velocity().unwrap_or(0.0),
            held,
        })
    }

    /// Number of consecutive frames the output has been held.
    pub fn held_frames(&self) -> usize {
        self.hold.held_frames()
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.gate.reset();
        self.hold.reset();
        self.kalman.reset();
        self.recent_raw.clear();
        self.held_value = None;
        self.reacquire_run = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 0.0125;

    #[test]
    fn passes_clean_stream_through() {
        let mut d = DistanceDenoiser::new(DenoiseConfig::default());
        let mut last = None;
        for i in 0..200 {
            let truth = 8.0 + 0.01 * i as f64; // 0.8 m/s round-trip speed
            last = d.push(Some(truth), DT);
        }
        let out = last.unwrap();
        assert!(!out.held);
        assert!(
            (out.round_trip_m - 9.99).abs() < 0.05,
            "got {}",
            out.round_trip_m
        );
        assert!((out.velocity_mps - 0.8).abs() < 0.2);
    }

    #[test]
    fn rejects_multipath_spike() {
        let mut d = DistanceDenoiser::new(DenoiseConfig::default());
        for _ in 0..50 {
            d.push(Some(6.0), DT);
        }
        // A 5 m jump in one frame (§4.4's example of an impossible jump).
        let out = d.push(Some(11.0), DT).unwrap();
        assert!(out.held, "spike should be treated as missing");
        assert!(
            (out.round_trip_m - 6.0).abs() < 0.1,
            "got {}",
            out.round_trip_m
        );
        // Stream recovers when the spike goes away.
        let out = d.push(Some(6.01), DT).unwrap();
        assert!(!out.held);
    }

    #[test]
    fn holds_position_when_person_stops() {
        let mut d = DistanceDenoiser::new(DenoiseConfig::default());
        for _ in 0..100 {
            d.push(Some(5.0), DT);
        }
        // Person stops: contour disappears for 2 seconds.
        let mut out = None;
        for _ in 0..160 {
            out = d.push(None, DT);
        }
        let out = out.unwrap();
        assert!(out.held);
        assert_eq!(d.held_frames(), 160);
        assert!(
            (out.round_trip_m - 5.0).abs() < 0.2,
            "got {}",
            out.round_trip_m
        );
    }

    #[test]
    fn no_output_before_first_detection() {
        let mut d = DistanceDenoiser::new(DenoiseConfig::default());
        assert!(d.push(None, DT).is_none());
        assert!(d.push(None, DT).is_none());
        assert!(d.push(Some(4.0), DT).is_some());
    }

    #[test]
    fn reseeds_after_persistent_new_position() {
        let cfg = DenoiseConfig {
            max_consecutive_rejects: 10,
            ..DenoiseConfig::default()
        };
        let mut d = DistanceDenoiser::new(cfg);
        for _ in 0..50 {
            d.push(Some(4.0), DT);
        }
        // Contour jumps to 9 m and stays: after the reject budget, follow it.
        let mut out = None;
        for _ in 0..60 {
            out = d.push(Some(9.0), DT);
        }
        assert!((out.unwrap().round_trip_m - 9.0).abs() < 0.3);
    }

    #[test]
    fn smooths_jitter() {
        let mut d = DistanceDenoiser::new(DenoiseConfig::default());
        let mut raw_var = 0.0;
        let mut out_var = 0.0;
        let mut n = 0.0;
        for i in 0..500 {
            // ±4 cm alternation (6.4 m/s implied speed) stays inside the
            // outlier gate, so this exercises the Kalman stage.
            let jitter = if i % 2 == 0 { 0.04 } else { -0.04 };
            let out = d.push(Some(7.0 + jitter), DT).unwrap();
            if i > 100 {
                raw_var += jitter * jitter;
                out_var += (out.round_trip_m - 7.0) * (out.round_trip_m - 7.0);
                n += 1.0;
            }
        }
        assert!(
            out_var / n < 0.25 * raw_var / n,
            "out {} raw {}",
            out_var / n,
            raw_var / n
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = DistanceDenoiser::new(DenoiseConfig::default());
        d.push(Some(3.0), DT);
        d.reset();
        assert!(d.push(None, DT).is_none());
    }
}
