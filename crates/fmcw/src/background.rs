//! Static multipath removal by consecutive-frame subtraction (paper §4.2).
//!
//! Reflections from walls and furniture are far stronger than the body echo
//! — the "Flash Effect" — but their round-trip distance, and therefore both
//! the frequency *and phase* of their baseband tone, is constant across
//! frames. Subtracting each complex range profile from its predecessor
//! cancels them exactly, while a moving person's tone survives: even
//! sub-bin motion between frames rotates the tone's carrier phase by
//! `2π·Δd/λ` (λ ≈ 5 cm at these carriers), so the complex difference keeps
//! most of the body's energy.

use witrack_dsp::Complex;

/// Subtracts the previous frame's complex range profile from the current
/// one. All buffers (the baseline and both difference outputs) are owned by
/// the subtractor and reused, so steady-state frames never allocate; the
/// returned slices borrow those buffers and stay valid until the next push.
#[derive(Debug, Clone, Default)]
pub struct BackgroundSubtractor {
    /// Previous frame's profile (the baseline), reused in place.
    prev: Vec<Complex>,
    has_baseline: bool,
    /// Reusable magnitude-difference output.
    diff_mags: Vec<f64>,
    /// Reusable complex-difference output.
    diff_complex: Vec<Complex>,
}

impl BackgroundSubtractor {
    /// Creates a subtractor with no history.
    pub fn new() -> BackgroundSubtractor {
        BackgroundSubtractor::default()
    }

    /// Swaps `profile` in as the new baseline. The caller has already
    /// verified the length.
    fn swap_baseline(&mut self, profile: &[Complex]) {
        if self.has_baseline {
            self.prev.copy_from_slice(profile);
        } else {
            // First frame of the stream: size the baseline buffer once.
            self.prev.clear();
            self.prev.extend_from_slice(profile);
            self.has_baseline = true;
        }
    }

    /// Pushes a frame; returns the background-subtracted *magnitudes*
    /// (what the contour tracker consumes), or `None` for the very first
    /// frame (no baseline yet).
    ///
    /// # Panics
    /// Panics if the profile length changes between frames.
    pub fn push(&mut self, profile: &[Complex]) -> Option<&[f64]> {
        if !self.has_baseline {
            self.swap_baseline(profile);
            return None;
        }
        assert_eq!(
            self.prev.len(),
            profile.len(),
            "profile length changed between frames"
        );
        self.diff_mags.resize(profile.len(), 0.0);
        for (d, (cur, old)) in self
            .diff_mags
            .iter_mut()
            .zip(profile.iter().zip(&self.prev))
        {
            *d = (*cur - *old).abs();
        }
        self.swap_baseline(profile);
        Some(&self.diff_mags)
    }

    /// Like [`BackgroundSubtractor::push`] but returns the complex
    /// difference (used by tests and by coherent downstream processing).
    pub fn push_complex(&mut self, profile: &[Complex]) -> Option<&[Complex]> {
        if !self.has_baseline {
            self.swap_baseline(profile);
            return None;
        }
        assert_eq!(
            self.prev.len(),
            profile.len(),
            "profile length changed between frames"
        );
        self.diff_complex.resize(profile.len(), Complex::ZERO);
        for (d, (cur, old)) in self
            .diff_complex
            .iter_mut()
            .zip(profile.iter().zip(&self.prev))
        {
            *d = *cur - *old;
        }
        self.swap_baseline(profile);
        Some(&self.diff_complex)
    }

    /// Whether a baseline frame has been captured.
    pub fn has_baseline(&self) -> bool {
        self.has_baseline
    }

    /// Drops the baseline (e.g. after a pipeline reset). Buffers are kept
    /// for reuse.
    pub fn reset(&mut self) {
        self.has_baseline = false;
        self.prev.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, bin: usize, amp: f64, phase: f64) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[bin] = Complex::from_polar(amp, phase);
        v
    }

    #[test]
    fn first_frame_yields_none() {
        let mut bs = BackgroundSubtractor::new();
        assert!(bs.push(&tone(32, 5, 100.0, 0.0)).is_none());
        assert!(bs.has_baseline());
    }

    #[test]
    fn static_reflector_cancels_exactly() {
        let mut bs = BackgroundSubtractor::new();
        let frame = tone(32, 5, 1000.0, 0.7);
        bs.push(&frame);
        let diff = bs.push(&frame).unwrap();
        assert!(diff.iter().all(|&m| m < 1e-9));
    }

    #[test]
    fn moving_reflector_survives_subtraction() {
        // Same bin, phase rotated by ~1.5 rad (≈ 1 cm of motion at 6 GHz):
        // the complex difference keeps most of the amplitude.
        let mut bs = BackgroundSubtractor::new();
        bs.push(&tone(32, 7, 100.0, 0.0));
        let diff = bs.push(&tone(32, 7, 100.0, 1.5)).unwrap();
        // |1 − e^{i·1.5}| = 2·sin(0.75) ≈ 1.36 of the original amplitude.
        assert!(diff[7] > 100.0, "residual {}", diff[7]);
    }

    #[test]
    fn mixed_scene_keeps_only_the_mover() {
        let n = 64;
        let mut bs = BackgroundSubtractor::new();
        // Static wall at bin 3 (huge), body at bin 20 (small, phase varies).
        let mut f1 = tone(n, 3, 5000.0, 1.0);
        f1[20] = Complex::from_polar(10.0, 0.0);
        let mut f2 = tone(n, 3, 5000.0, 1.0);
        f2[20] = Complex::from_polar(10.0, 2.0);
        bs.push(&f1);
        let diff = bs.push(&f2).unwrap();
        assert!(diff[3] < 1e-9, "wall must cancel");
        assert!(diff[20] > 5.0, "body must survive");
    }

    #[test]
    fn complex_and_magnitude_variants_agree() {
        let mut a = BackgroundSubtractor::new();
        let mut b = BackgroundSubtractor::new();
        let f1 = tone(16, 2, 10.0, 0.1);
        let f2 = tone(16, 2, 12.0, 0.4);
        a.push(&f1);
        b.push_complex(&f1);
        let mags = a.push(&f2).unwrap();
        let cplx = b.push_complex(&f2).unwrap();
        for (m, z) in mags.iter().zip(cplx) {
            assert!((m - z.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_forgets_baseline() {
        let mut bs = BackgroundSubtractor::new();
        bs.push(&tone(8, 1, 1.0, 0.0));
        bs.reset();
        assert!(!bs.has_baseline());
        assert!(bs.push(&tone(8, 1, 1.0, 0.0)).is_none());
    }

    #[test]
    fn steady_state_reuses_buffers() {
        let mut bs = BackgroundSubtractor::new();
        bs.push(&tone(32, 5, 10.0, 0.0));
        let mut ptrs = Vec::new();
        for k in 0..4 {
            let diff = bs.push(&tone(32, 5, 10.0, 0.1 * k as f64)).unwrap();
            ptrs.push(diff.as_ptr());
        }
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "difference buffer reallocated"
        );
    }

    #[test]
    #[should_panic]
    fn length_change_panics() {
        let mut bs = BackgroundSubtractor::new();
        bs.push(&tone(8, 1, 1.0, 0.0));
        bs.push(&tone(16, 1, 1.0, 0.0));
    }
}
