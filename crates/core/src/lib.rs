//! WiTrack: 3D motion tracking from body radio reflections.
//!
//! This crate is the paper's primary contribution assembled end-to-end
//! ("3D Tracking via Body Radio Reflections", NSDI 2014):
//!
//! * [`WiTrack`] — the full pipeline: per-antenna FMCW time-of-flight
//!   estimation (§4) feeding the geometric 3D localization (§5), emitting a
//!   [`TrackUpdate`] every 12.5 ms frame.
//! * [`fall`] — the §6.2 fall detector: a fall is a *fast* elevation change
//!   larger than ⅓ of its prior value that ends near the ground.
//! * [`pointing`] — the §6.1 pointing-direction estimator: distinguish arm
//!   strokes from whole-body motion by spectral spread, segment the lift and
//!   drop strokes, robust-regress each, localize the hand endpoints, and
//!   average the two stroke directions.
//! * [`appliance`] — the point-to-control demo registry (the paper drives
//!   Insteon home devices; we drive an in-memory registry).
//! * [`metrics`] — evaluation helpers (per-axis errors, confusion counts)
//!   used by the experiment harnesses.
//! * [`frame_pipeline`] — the backend-agnostic [`FramePipeline`] trait the
//!   serving layer (`witrack-serve`) shards over, with the unified
//!   per-frame [`FrameReport`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod appliance;
pub mod config;
pub mod events;
pub mod fall;
pub mod frame_pipeline;
pub mod metrics;
pub mod pipeline;
pub mod pointing;
pub mod track;

pub use config::{SolverChoice, WiTrackConfig};
pub use events::{Event, EventConfig, EventDetector};
pub use fall::{FallConfig, FallDetector, FallEvent};
pub use frame_pipeline::{FramePipeline, FrameReport, TargetReport};
pub use pipeline::{TrackUpdate, WiTrack};
pub use pointing::{PointingConfig, PointingError, PointingEstimate, PointingEstimator};
pub use track::Track;
