//! Fall detection (paper §6.2, evaluated in §9.5).
//!
//! The paper's rule, verbatim: *"To detect a fall, WiTrack requires two
//! conditions to be met: First, the person's elevation along the z axis must
//! change significantly (by more than one third of its value), and the final
//! value for her elevation must be close to the ground level. The second
//! condition is the change in elevation has to occur within a very short
//! period to reflect that people fall quicker than they sit."*
//!
//! [`classify_elevation_track`] applies the rule offline to a full `(t, z)`
//! track (how the paper processed its 132 logged trials); [`FallDetector`]
//! applies it online over a sliding window and edge-triggers a
//! [`FallEvent`].

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tuning for the §6.2 rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FallConfig {
    /// Elevation below which the person is considered "close to the ground
    /// level" (m). Body centers settle around 0.1–0.3 m when on the floor.
    pub ground_z: f64,
    /// Required drop as a fraction of the prior elevation ("more than one
    /// third of its value").
    pub drop_fraction: f64,
    /// Maximum 10–90 % transition time for the drop to count as a fall
    /// rather than a (slow) sit (s).
    pub max_transition_s: f64,
    /// Elevation samples are analyzed over this trailing window (s).
    pub window_s: f64,
    /// Centered moving-average window applied to the elevation track before
    /// measuring crossing times (s). Raw tracked z jitters by ±0.1–0.2 m,
    /// and a single noisy sample crossing a threshold would collapse the
    /// measured transition time to ~0.
    pub smoothing_s: f64,
}

impl Default for FallConfig {
    fn default() -> Self {
        FallConfig {
            ground_z: 0.35,
            drop_fraction: 1.0 / 3.0,
            max_transition_s: 0.9,
            window_s: 6.0,
            smoothing_s: 0.3,
        }
    }
}

/// Centered moving average over a time window (prefix-sum based).
fn smoothed(track: &[(f64, f64)], window_s: f64) -> Vec<(f64, f64)> {
    let n = track.len();
    if n < 3 || window_s <= 0.0 {
        return track.to_vec();
    }
    let span = track[n - 1].0 - track[0].0;
    if span <= 0.0 {
        return track.to_vec();
    }
    let dt = span / (n - 1) as f64;
    let half = ((window_s / dt / 2.0).round() as usize).max(1);
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &(_, z) in track {
        prefix.push(prefix.last().expect("non-empty") + z);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (track[i].0, (prefix[hi] - prefix[lo]) / (hi - lo) as f64)
        })
        .collect()
}

/// A detected fall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallEvent {
    /// Time of detection (s).
    pub time_s: f64,
    /// Elevation before the drop (m).
    pub from_z: f64,
    /// Elevation after the drop (m).
    pub to_z: f64,
    /// Estimated 10–90 % transition duration (s).
    pub transition_s: f64,
}

/// Offline verdict for one activity trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The track satisfies all fall conditions.
    Fall(FallEvent),
    /// The elevation never dropped significantly (walking, standing).
    NoSignificantDrop,
    /// Dropped, but settled above ground level (sat on a chair).
    NotNearGround,
    /// Dropped to the ground, but too slowly (sat on the floor).
    TooSlow(FallEvent),
}

impl Verdict {
    /// Whether the verdict classifies the trial as a fall.
    pub fn is_fall(&self) -> bool {
        matches!(self, Verdict::Fall(_))
    }
}

/// Estimates the 10–90 % crossing duration of a monotone-ish drop from
/// `hi` to `lo` inside `samples`.
fn transition_duration(samples: &[(f64, f64)], hi: f64, lo: f64) -> f64 {
    let drop = hi - lo;
    if drop <= 0.0 || samples.len() < 2 {
        return 0.0;
    }
    let z10 = hi - 0.1 * drop;
    let z90 = hi - 0.9 * drop;
    // Last time the track is still above z10 before it first dips under z90.
    let first_under_90 = samples.iter().position(|&(_, z)| z <= z90);
    let Some(i90) = first_under_90 else {
        return f64::INFINITY;
    };
    let t90 = samples[i90].0;
    let t10 = samples[..i90]
        .iter()
        .rev()
        .find(|&&(_, z)| z >= z10)
        .map(|&(t, _)| t)
        .unwrap_or(samples[0].0);
    // Scale the 10–90 span to a full-transition estimate.
    (t90 - t10) / 0.8
}

/// Applies the §6.2 rule to a complete elevation track.
///
/// The "prior elevation" is the median of the first quarter of the track
/// (the person is up and moving); the "final elevation" is the median of the
/// last second.
pub fn classify_elevation_track(raw_track: &[(f64, f64)], cfg: &FallConfig) -> Verdict {
    if raw_track.len() < 8 {
        return Verdict::NoSignificantDrop;
    }
    let track: &[(f64, f64)] = &smoothed(raw_track, cfg.smoothing_s);
    let quarter = (track.len() / 4).max(2);
    let mut head: Vec<f64> = track[..quarter].iter().map(|&(_, z)| z).collect();
    let from_z = witrack_dsp::stats::median_in_place(&mut head);
    let t_end = track.last().expect("non-empty").0;
    let mut tail: Vec<f64> = track
        .iter()
        .rev()
        .take_while(|&&(t, _)| t_end - t <= 1.0)
        .map(|&(_, z)| z)
        .collect();
    if tail.is_empty() {
        tail.push(track.last().expect("non-empty").1);
    }
    let to_z = witrack_dsp::stats::median_in_place(&mut tail);

    let drop = from_z - to_z;
    if drop < cfg.drop_fraction * from_z {
        return Verdict::NoSignificantDrop;
    }
    if to_z > cfg.ground_z {
        return Verdict::NotNearGround;
    }
    let transition_s = transition_duration(track, from_z, to_z);
    let event = FallEvent {
        time_s: t_end,
        from_z,
        to_z,
        transition_s,
    };
    if transition_s <= cfg.max_transition_s {
        Verdict::Fall(event)
    } else {
        Verdict::TooSlow(event)
    }
}

/// Online fall detector over a sliding elevation window.
#[derive(Debug, Clone)]
pub struct FallDetector {
    cfg: FallConfig,
    window: VecDeque<(f64, f64)>,
    /// Suppresses duplicate events for the same drop.
    latched: bool,
}

impl FallDetector {
    /// Creates an online detector.
    pub fn new(cfg: FallConfig) -> FallDetector {
        FallDetector {
            cfg,
            window: VecDeque::new(),
            latched: false,
        }
    }

    /// Pushes one elevation sample; returns a [`FallEvent`] at the moment a
    /// fall is first confirmed.
    ///
    /// All decisions run on the *smoothed* window: raw tracked elevation
    /// jitters by ±0.1–0.2 m, which would inflate the window maximum, fake
    /// near-ground dips, and collapse measured transition times.
    pub fn push(&mut self, time_s: f64, z_raw: f64) -> Option<FallEvent> {
        self.window.push_back((time_s, z_raw));
        while let Some(&(t0, _)) = self.window.front() {
            if time_s - t0 > self.cfg.window_s {
                self.window.pop_front();
            } else {
                break;
            }
        }
        let raw: Vec<(f64, f64)> = self.window.iter().copied().collect();
        let samples = smoothed(&raw, self.cfg.smoothing_s);
        let z = samples.last().expect("window non-empty").1;
        let hi = samples.iter().map(|&(_, z)| z).fold(f64::MIN, f64::max);

        // Re-arm once the person is clearly up again.
        if self.latched {
            if z > self.cfg.ground_z + 0.2 {
                self.latched = false;
            }
            return None;
        }
        // Trigger condition: currently near the ground, recently up high.
        if z > self.cfg.ground_z || hi < 2.0 * self.cfg.ground_z {
            return None;
        }
        // Settle check: require ~0.3 s of near-ground samples at the tail so
        // we evaluate the completed transition, not its middle.
        let settled = samples
            .iter()
            .rev()
            .take_while(|&&(t, _)| time_s - t <= 0.3)
            .all(|&(_, z)| z <= self.cfg.ground_z + 0.05);
        if !settled {
            return None;
        }
        let drop = hi - z;
        if drop < self.cfg.drop_fraction * hi {
            return None;
        }
        let transition_s = transition_duration(&samples, hi, z);
        if transition_s <= self.cfg.max_transition_s {
            self.latched = true;
            Some(FallEvent {
                time_s,
                from_z: hi,
                to_z: z,
                transition_s,
            })
        } else {
            // A slow descent to the ground: latch anyway so we do not keep
            // re-evaluating the same sit as the window slides.
            self.latched = true;
            None
        }
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.window.clear();
        self.latched = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an elevation track: up at `hi` until `t0`, smoothstep down to
    /// `lo` over `dur`, then settled until `t_end`.
    fn drop_track(hi: f64, lo: f64, t0: f64, dur: f64, t_end: f64) -> Vec<(f64, f64)> {
        let dt = 0.0125;
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < t_end {
            let z = if t < t0 {
                hi
            } else if t < t0 + dur {
                let s = (t - t0) / dur;
                let s = s * s * (3.0 - 2.0 * s);
                hi + (lo - hi) * s
            } else {
                lo
            };
            out.push((t, z));
            t += dt;
        }
        out
    }

    #[test]
    fn fast_drop_to_ground_is_a_fall() {
        let track = drop_track(1.0, 0.1, 8.0, 0.4, 20.0);
        let v = classify_elevation_track(&track, &FallConfig::default());
        assert!(v.is_fall(), "{v:?}");
        if let Verdict::Fall(e) = v {
            assert!((e.from_z - 1.0).abs() < 0.05);
            assert!((e.to_z - 0.1).abs() < 0.05);
            assert!(e.transition_s < 0.7);
        }
    }

    #[test]
    fn slow_drop_to_ground_is_sitting() {
        let track = drop_track(1.0, 0.25, 8.0, 1.6, 20.0);
        let v = classify_elevation_track(&track, &FallConfig::default());
        assert!(matches!(v, Verdict::TooSlow(_)), "{v:?}");
    }

    #[test]
    fn chair_height_is_not_near_ground() {
        let track = drop_track(1.0, 0.62, 8.0, 0.9, 20.0);
        let v = classify_elevation_track(&track, &FallConfig::default());
        assert_eq!(v, Verdict::NotNearGround);
    }

    #[test]
    fn walking_never_triggers() {
        let dt = 0.0125;
        let track: Vec<(f64, f64)> = (0..1600)
            .map(|i| {
                let t = i as f64 * dt;
                (t, 1.0 + 0.03 * (2.0 * std::f64::consts::PI * 1.8 * t).sin())
            })
            .collect();
        assert_eq!(
            classify_elevation_track(&track, &FallConfig::default()),
            Verdict::NoSignificantDrop
        );
    }

    #[test]
    fn boundary_speed_respects_threshold() {
        let cfg = FallConfig::default();
        // Just inside the window.
        let fast = drop_track(1.0, 0.1, 8.0, cfg.max_transition_s * 0.9, 20.0);
        assert!(classify_elevation_track(&fast, &cfg).is_fall());
        // Clearly outside.
        let slow = drop_track(1.0, 0.1, 8.0, cfg.max_transition_s * 2.5, 20.0);
        assert!(!classify_elevation_track(&slow, &cfg).is_fall());
    }

    #[test]
    fn online_detector_fires_once_per_fall() {
        let mut det = FallDetector::new(FallConfig::default());
        let track = drop_track(1.0, 0.1, 8.0, 0.4, 20.0);
        let events: Vec<FallEvent> = track.iter().filter_map(|&(t, z)| det.push(t, z)).collect();
        assert_eq!(events.len(), 1, "events: {events:?}");
        let e = events[0];
        assert!(
            e.time_s > 8.0 && e.time_s < 10.0,
            "detected at {}",
            e.time_s
        );
        assert!(e.transition_s < 0.7);
    }

    #[test]
    fn online_detector_ignores_slow_sit_then_catches_later_fall() {
        let mut det = FallDetector::new(FallConfig::default());
        // Sit on floor slowly at t=5, stand back up at t=12, fall at t=20.
        let dt = 0.0125;
        let mut events = Vec::new();
        let mut t = 0.0;
        while t < 30.0 {
            let z = if t < 5.0 {
                1.0
            } else if t < 7.0 {
                1.0 - 0.75 * ((t - 5.0) / 2.0)
            } else if t < 12.0 {
                0.25
            } else if t < 13.0 {
                0.25 + 0.75 * (t - 12.0)
            } else if t < 20.0 {
                1.0
            } else if t < 20.4 {
                1.0 - 0.9 * ((t - 20.0) / 0.4)
            } else {
                0.1
            };
            if let Some(e) = det.push(t, z) {
                events.push(e);
            }
            t += dt;
        }
        assert_eq!(events.len(), 1, "events: {events:?}");
        assert!(events[0].time_s > 20.0);
    }

    #[test]
    fn short_tracks_are_no_falls() {
        let v = classify_elevation_track(&[(0.0, 1.0), (0.1, 0.1)], &FallConfig::default());
        assert_eq!(v, Verdict::NoSignificantDrop);
    }
}
