//! Evaluation metrics shared by the experiment harnesses.
//!
//! The paper reports per-axis localization error CDFs/medians/90th
//! percentiles (Figs. 8–10), pointing-angle CDFs (Fig. 11), and fall
//! detection precision/recall/F-measure (§9.5). These helpers compute those
//! quantities from (estimate, truth) pairs.

use witrack_dsp::stats::EmpiricalCdf;
use witrack_geom::Vec3;

/// Per-axis absolute error samples accumulated over an experiment.
#[derive(Debug, Clone, Default)]
pub struct AxisErrors {
    /// |x̂ − x| samples (m).
    pub x: Vec<f64>,
    /// |ŷ − y| samples (m).
    pub y: Vec<f64>,
    /// |ẑ − z| samples (m).
    pub z: Vec<f64>,
}

impl AxisErrors {
    /// An empty accumulator.
    pub fn new() -> AxisErrors {
        AxisErrors::default()
    }

    /// Adds one (estimate, truth) pair.
    pub fn push(&mut self, estimate: Vec3, truth: Vec3) {
        self.x.push((estimate.x - truth.x).abs());
        self.y.push((estimate.y - truth.y).abs());
        self.z.push((estimate.z - truth.z).abs());
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &AxisErrors) {
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
        self.z.extend_from_slice(&other.z);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether no samples have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// `(median, 90th percentile)` for one axis (0 = x, 1 = y, 2 = z), in
    /// meters.
    pub fn summary(&self, axis: usize) -> (f64, f64) {
        let v = match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis out of range: {axis}"),
        };
        (
            witrack_dsp::stats::percentile(v, 50.0),
            witrack_dsp::stats::percentile(v, 90.0),
        )
    }

    /// Empirical CDF for one axis.
    pub fn cdf(&self, axis: usize) -> EmpiricalCdf {
        let v = match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis out of range: {axis}"),
        };
        EmpiricalCdf::new(v.clone())
    }
}

/// Binary detection counts for the fall study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// Falls detected as falls.
    pub true_positives: usize,
    /// Non-falls detected as falls.
    pub false_positives: usize,
    /// Non-falls correctly passed.
    pub true_negatives: usize,
    /// Falls missed.
    pub false_negatives: usize,
}

impl BinaryConfusion {
    /// An empty table.
    pub fn new() -> BinaryConfusion {
        BinaryConfusion::default()
    }

    /// Records one trial.
    pub fn record(&mut self, actual_fall: bool, detected_fall: bool) {
        match (actual_fall, detected_fall) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Total trials recorded.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Precision: TP / (TP + FP). NaN when no detections.
    pub fn precision(&self) -> f64 {
        let det = self.true_positives + self.false_positives;
        if det == 0 {
            f64::NAN
        } else {
            self.true_positives as f64 / det as f64
        }
    }

    /// Recall: TP / (TP + FN). NaN when no actual positives.
    pub fn recall(&self) -> f64 {
        let act = self.true_positives + self.false_negatives;
        if act == 0 {
            f64::NAN
        } else {
            self.true_positives as f64 / act as f64
        }
    }

    /// F-measure (harmonic mean of precision and recall).
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            f64::NAN
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_errors_accumulate_and_summarize() {
        let mut e = AxisErrors::new();
        for i in 0..100 {
            let d = i as f64 * 0.001;
            e.push(Vec3::new(d, 2.0 * d, 3.0 * d), Vec3::ZERO);
        }
        assert_eq!(e.len(), 100);
        let (mx, px) = e.summary(0);
        let (my, _) = e.summary(1);
        let (mz, _) = e.summary(2);
        assert!(my > mx && mz > my);
        assert!(px > mx);
        assert!((e.cdf(0).median() - mx).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = AxisErrors::new();
        a.push(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
        let mut b = AxisErrors::new();
        b.push(Vec3::new(3.0, 0.0, 0.0), Vec3::ZERO);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        let (median, _) = a.summary(0);
        assert!((median - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_axis_panics() {
        AxisErrors::new().summary(3);
    }

    #[test]
    fn confusion_reproduces_paper_arithmetic() {
        // §9.5: 33 falls, 31 detected; 99 non-falls, 1 false alarm.
        let mut c = BinaryConfusion::new();
        for _ in 0..31 {
            c.record(true, true);
        }
        for _ in 0..2 {
            c.record(true, false);
        }
        for _ in 0..98 {
            c.record(false, false);
        }
        c.record(false, true);
        assert_eq!(c.total(), 132);
        assert!((c.precision() - 31.0 / 32.0).abs() < 1e-12); // 96.9 %
        assert!((c.recall() - 31.0 / 33.0).abs() < 1e-12); // 93.9 %
        assert!((c.f_measure() - 0.9538).abs() < 0.01);
    }

    #[test]
    fn degenerate_confusions_are_nan() {
        let c = BinaryConfusion::new();
        assert!(c.precision().is_nan());
        assert!(c.recall().is_nan());
        assert!(c.f_measure().is_nan());
    }
}
