//! The end-to-end WiTrack pipeline: sweeps in, 3D positions out.
//!
//! One [`WiTrack`] owns a per-antenna §4 TOF estimator for each receive
//! antenna and the §5 geometric solver. Feed it one sweep per antenna per
//! sweep interval; every `sweeps_per_frame` sweeps it emits a
//! [`TrackUpdate`] carrying the per-antenna round trips, the solved 3D
//! position, and the per-antenna spectral features the §6 applications
//! consume.
//!
//! The per-antenna stages are independent until the §5 solve, so on
//! frame-completing sweeps (where the heavy zoom transform + contour work
//! happens) they fan out across OS threads with [`std::thread::scope`] when
//! the host has cores to spare; accumulate-only sweeps and single-core
//! hosts stay serial, where thread spawning would only add overhead.

use crate::config::{SolverChoice, WiTrackConfig};
use witrack_fmcw::{Sweep, TofEstimator, TofFrame};
use witrack_geom::multilateration::{solve_least_squares, GaussNewtonConfig};
use witrack_geom::{AntennaArray, TArray, Vec3};

/// One processing frame's output.
#[derive(Debug, Clone)]
pub struct TrackUpdate {
    /// Frame counter since the stream began.
    pub frame_index: u64,
    /// Time (s) at the end of the frame.
    pub time_s: f64,
    /// Denoised round-trip distance per receive antenna (None until each
    /// stream seeds).
    pub round_trips: Vec<Option<f64>>,
    /// Solved 3D position, when all round trips are available and the
    /// ellipsoids intersect in front of the array.
    pub position: Option<Vec3>,
    /// `true` when the position is interpolated rather than freshly
    /// measured (§4.4): at least one antenna's contour stream is holding,
    /// so the last fully-measured position is reported. Solving a *mixture*
    /// of live and frozen round trips would be geometrically inconsistent —
    /// the antennas freeze at different instants — and the §5 geometry
    /// amplifies that inconsistency severely along x and z.
    pub held: bool,
    /// Per-antenna §4 frames (background-subtracted magnitudes, raw
    /// detections) for the §6 applications and the figure harnesses.
    pub frames: Vec<TofFrame>,
}

impl TrackUpdate {
    /// The tracked elevation (z), if a position was solved.
    pub fn elevation(&self) -> Option<f64> {
        self.position.map(|p| p.z)
    }
}

/// Whether per-antenna frame work should fan out across threads: only when
/// there is more than one antenna *and* more than one core (on a single
/// core, scoped spawning is pure overhead). Checked once at pipeline
/// construction.
///
/// The fan-out spawns scoped threads per frame (the caller's thread takes
/// the last antenna). At the paper config each spawned stage is tens of
/// microseconds against a spawn cost of the same order, so the win is
/// real but thin; heavier configs (longer sweeps, more antennas, larger
/// kept bands) amortize the spawns better. A persistent worker pool would
/// remove the per-frame spawn entirely and is the natural next step if
/// profiling on a multi-core deployment shows the spawn dominating.
pub fn antenna_parallelism(n_rx: usize) -> bool {
    n_rx > 1
        && std::thread::available_parallelism()
            .map(|p| p.get() > 1)
            .unwrap_or(false)
}

/// The WiTrack system: N per-antenna TOF estimators + the 3D solver.
pub struct WiTrack {
    cfg: WiTrackConfig,
    array: AntennaArray,
    tarray: Option<TArray>,
    estimators: Vec<TofEstimator>,
    /// Fan frame work out across antenna threads (see [`antenna_parallelism`]).
    parallel: bool,
    gn: GaussNewtonConfig,
    /// Recent positions solved from all-live (non-held) round trips. While
    /// any antenna interpolates, the component-wise median of these is
    /// reported — a single last solve would freeze one frame's noise into
    /// the whole still period.
    recent_live: std::collections::VecDeque<Vec3>,
    /// Per-stage latency histograms, when the owner attached them.
    stats: Option<witrack_obs::StageStats>,
}

/// Construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The sweep configuration failed validation.
    BadSweep(witrack_fmcw::config::ConfigError),
    /// The closed-form solver requires the exact 3-receiver T geometry.
    ClosedFormNeedsTArray,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::BadSweep(e) => write!(f, "invalid sweep config: {e}"),
            BuildError::ClosedFormNeedsTArray => {
                write!(f, "closed-form solver requires the 3-receiver T geometry")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl WiTrack {
    /// Builds the pipeline with the paper's T-array geometry derived from
    /// the config's origin and separation.
    pub fn new(cfg: WiTrackConfig) -> Result<WiTrack, BuildError> {
        cfg.sweep.validate().map_err(BuildError::BadSweep)?;
        let tarray = TArray::symmetric(cfg.array_origin, cfg.antenna_separation);
        let array = tarray.antenna_array();
        Ok(WiTrack {
            estimators: Self::make_estimators(&cfg, array.num_rx()),
            parallel: antenna_parallelism(array.num_rx()),
            tarray: Some(tarray),
            array,
            gn: GaussNewtonConfig::default(),
            cfg,
            recent_live: std::collections::VecDeque::new(),
            stats: None,
        })
    }

    /// Builds the pipeline around an arbitrary antenna array (e.g. the §5
    /// over-constrained arrays with > 3 receivers). Forces the least-squares
    /// solver.
    pub fn with_array(cfg: WiTrackConfig, array: AntennaArray) -> Result<WiTrack, BuildError> {
        cfg.sweep.validate().map_err(BuildError::BadSweep)?;
        if cfg.solver == SolverChoice::ClosedForm {
            return Err(BuildError::ClosedFormNeedsTArray);
        }
        Ok(WiTrack {
            estimators: Self::make_estimators(&cfg, array.num_rx()),
            parallel: antenna_parallelism(array.num_rx()),
            tarray: None,
            array,
            gn: GaussNewtonConfig::default(),
            cfg,
            recent_live: std::collections::VecDeque::new(),
            stats: None,
        })
    }

    fn make_estimators(cfg: &WiTrackConfig, n: usize) -> Vec<TofEstimator> {
        (0..n)
            .map(|_| {
                TofEstimator::with_tuning(cfg.sweep, cfg.max_round_trip_m, cfg.contour, cfg.denoise)
            })
            .collect()
    }

    /// The antenna array in use.
    pub fn array(&self) -> &AntennaArray {
        &self.array
    }

    /// The configuration in use.
    pub fn config(&self) -> &WiTrackConfig {
        &self.cfg
    }

    /// Attaches per-stage latency histograms: on every frame-completing
    /// push, per-antenna range-profiling time is recorded into
    /// `stats.profile`, background + contour + denoise time into
    /// `stats.detect`, and the §5 solve into `stats.associate`.
    pub fn attach_stage_stats(&mut self, stats: witrack_obs::StageStats) {
        self.stats = Some(stats);
    }

    /// Pushes one sweep interval's baseband, one slice per receive antenna.
    /// Returns a [`TrackUpdate`] on frame boundaries.
    ///
    /// # Panics
    /// Panics if `per_rx.len()` differs from the number of receive antennas
    /// or any sweep has the wrong length.
    pub fn push_sweeps(&mut self, per_rx: &[&[f64]]) -> Option<TrackUpdate> {
        assert_eq!(
            per_rx.len(),
            self.estimators.len(),
            "one sweep per receive antenna"
        );
        self.push_sweeps_inner(per_rx.iter().copied().map(Sweep::F64))
    }

    /// [`Self::push_sweeps`] over one flat, antenna-contiguous buffer:
    /// antenna `k`'s sweep occupies
    /// `flat[k * samples_per_sweep ..][.. samples_per_sweep]`. This is the
    /// layout sweep batches arrive in off the wire, so the serving layer
    /// feeds the pipeline without building a per-sweep slice table.
    ///
    /// # Panics
    /// Panics if `flat.len()` is not exactly
    /// `samples_per_sweep × num_rx`, or `samples_per_sweep` is zero.
    pub fn push_sweeps_flat(
        &mut self,
        flat: &[f64],
        samples_per_sweep: usize,
    ) -> Option<TrackUpdate> {
        assert!(samples_per_sweep > 0, "sweeps cannot be empty");
        assert_eq!(
            flat.len(),
            samples_per_sweep * self.estimators.len(),
            "one sweep per receive antenna, packed contiguously"
        );
        self.push_sweeps_inner(flat.chunks_exact(samples_per_sweep).map(Sweep::F64))
    }

    /// [`Self::push_sweeps_flat`] over wire-quantized samples
    /// (`sample = q · scale`): the profile front half stays in fixed point
    /// (see [`witrack_fmcw::RangeProfiler::push_sweep_q`]), so the serving
    /// layer feeds i16 wire batches without a dequantization pass.
    ///
    /// # Panics
    /// Panics if `flat.len()` is not exactly
    /// `samples_per_sweep × num_rx`, or `samples_per_sweep` is zero.
    pub fn push_sweeps_flat_q(
        &mut self,
        flat: &[i16],
        samples_per_sweep: usize,
        scale: f64,
    ) -> Option<TrackUpdate> {
        assert!(samples_per_sweep > 0, "sweeps cannot be empty");
        assert_eq!(
            flat.len(),
            samples_per_sweep * self.estimators.len(),
            "one sweep per receive antenna, packed contiguously"
        );
        self.push_sweeps_inner(
            flat.chunks_exact(samples_per_sweep)
                .map(move |c| Sweep::Q(c, scale)),
        )
    }

    fn push_sweeps_inner<'a, I>(&mut self, per_rx: I) -> Option<TrackUpdate>
    where
        I: DoubleEndedIterator<Item = Sweep<'a>> + ExactSizeIterator,
    {
        // Sweeps that only accumulate are microseconds of work; spawning
        // threads for them would dominate. Fan out only when this sweep
        // completes a frame (zoom transform + contour + denoise per
        // antenna) and the host is multi-core.
        let completes = self
            .estimators
            .first()
            .map(|e| e.next_sweep_completes_frame())
            .unwrap_or(false);
        // One per-antenna stage, stage-timed when histograms are
        // attached (the timed path only measures frame-completing
        // sweeps; accumulate-only sweeps record nothing).
        let stats = &self.stats;
        let stage = |est: &mut TofEstimator, sweep: Sweep<'a>| -> Option<TofFrame> {
            match stats {
                Some(st) => {
                    let mut times = witrack_fmcw::StageTimes::default();
                    let frame = est.push_timed(sweep, &mut times);
                    if frame.is_some() {
                        st.profile.record(times.profile_ns);
                        st.detect.record(times.detect_ns);
                    }
                    frame
                }
                None => est.push(sweep),
            }
        };
        let frames: Vec<Option<TofFrame>> = if self.parallel && completes {
            std::thread::scope(|s| {
                // The caller's thread takes the last antenna itself instead
                // of blocking in join — one fewer spawn per frame.
                let stage = &stage;
                let mut stages = self.estimators.iter_mut().zip(per_rx);
                let last = stages.next_back();
                let handles: Vec<_> = stages
                    .map(|(est, sweep)| s.spawn(move || stage(est, sweep)))
                    .collect();
                let inline = last.map(|(est, sweep)| stage(est, sweep));
                let mut frames: Vec<Option<TofFrame>> = handles
                    .into_iter()
                    .map(|h| h.join().expect("antenna stage panicked"))
                    .collect();
                frames.extend(inline);
                frames
            })
        } else {
            self.estimators
                .iter_mut()
                .zip(per_rx)
                .map(|(est, sweep)| stage(est, sweep))
                .collect()
        };
        // All estimators share the sweep clock, so they emit frames together.
        if frames.iter().any(|f| f.is_none()) {
            debug_assert!(
                frames.iter().all(|f| f.is_none()),
                "estimators desynchronized"
            );
            return None;
        }
        let frames: Vec<TofFrame> = frames.into_iter().map(|f| f.expect("checked")).collect();
        let associate_start = self.stats.as_ref().map(|_| std::time::Instant::now());
        let round_trips: Vec<Option<f64>> = frames.iter().map(|f| f.round_trip_m()).collect();
        // "Held" as soon as ANY antenna interpolates: a mixed live/frozen
        // solve is inconsistent (see the `held` field docs).
        let held = frames
            .iter()
            .any(|f| f.denoised.map(|d| d.held).unwrap_or(true));

        let position = if held {
            self.held_position()
        } else {
            let p = self.solve(&round_trips);
            if let Some(p) = p {
                self.recent_live.push_back(p);
                if self.recent_live.len() > 5 {
                    self.recent_live.pop_front();
                }
            }
            p
        };
        if let (Some(st), Some(start)) = (self.stats.as_ref(), associate_start) {
            st.associate.record_since(start);
        }
        Some(TrackUpdate {
            frame_index: frames[0].frame_index,
            time_s: frames[0].time_s,
            round_trips,
            position,
            held,
            frames,
        })
    }

    /// Solves the 3D position from per-antenna round trips (all required).
    pub fn solve(&self, round_trips: &[Option<f64>]) -> Option<Vec3> {
        if round_trips.iter().any(|r| r.is_none()) {
            return None;
        }
        let rts: Vec<f64> = round_trips.iter().map(|r| r.expect("checked")).collect();
        match (self.cfg.solver, &self.tarray) {
            (SolverChoice::ClosedForm, Some(t)) => t.solve([rts[0], rts[1], rts[2]]).ok(),
            _ => solve_least_squares(&self.array, &rts, &self.gn)
                .ok()
                .map(|s| s.position),
        }
    }

    /// The position reported while interpolating: the component-wise median
    /// of the recent live solves.
    fn held_position(&self) -> Option<Vec3> {
        if self.recent_live.is_empty() {
            return None;
        }
        let mut xs: Vec<f64> = self.recent_live.iter().map(|p| p.x).collect();
        let mut ys: Vec<f64> = self.recent_live.iter().map(|p| p.y).collect();
        let mut zs: Vec<f64> = self.recent_live.iter().map(|p| p.z).collect();
        Some(Vec3::new(
            witrack_dsp::stats::median_in_place(&mut xs),
            witrack_dsp::stats::median_in_place(&mut ys),
            witrack_dsp::stats::median_in_place(&mut zs),
        ))
    }

    /// Resets all stream state.
    pub fn reset(&mut self) {
        for e in &mut self.estimators {
            e.reset();
        }
        self.recent_live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witrack_fmcw::SweepConfig;

    fn small_cfg() -> WiTrackConfig {
        WiTrackConfig {
            sweep: SweepConfig {
                start_freq_hz: 5.56e8,
                bandwidth_hz: 1.69e8,
                sweep_duration_s: 1e-3,
                sample_rate_hz: 100e3,
                sweeps_per_frame: 5,
                transmit_power_w: 1e-3,
            },
            max_round_trip_m: 40.0,
            ..WiTrackConfig::witrack_default()
        }
    }

    /// Dechirped sweep for reflectors at given round trips, one per antenna.
    fn sweeps_for(
        cfg: &WiTrackConfig,
        array: &AntennaArray,
        point: Vec3,
        amp: f64,
    ) -> Vec<Vec<f64>> {
        use std::f64::consts::PI;
        let sw = &cfg.sweep;
        let n = sw.samples_per_sweep();
        (0..array.num_rx())
            .map(|k| {
                let rt = array.round_trip(point, k);
                let tau = rt / 299_792_458.0;
                let beat = sw.beat_for_tof(tau);
                let phase = 2.0 * PI * sw.start_freq_hz * tau;
                (0..n)
                    .map(|i| {
                        let t = i as f64 / sw.sample_rate_hz;
                        amp * (2.0 * PI * beat * t + phase).cos()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tracks_a_synthetic_walker_in_3d() {
        let cfg = small_cfg();
        let mut wt = WiTrack::new(cfg).unwrap();
        let array = wt.array().clone();
        let mut errs = Vec::new();
        for f in 0..150 {
            // Walk diagonally: x −1 → 1, y 4 → 6, z fixed.
            let s = f as f64 / 150.0;
            let p = Vec3::new(-1.0 + 2.0 * s, 4.0 + 2.0 * s, 1.2);
            let sweeps = sweeps_for(&cfg, &array, p, 1.0);
            let refs: Vec<&[f64]> = sweeps.iter().map(|v| v.as_slice()).collect();
            for _ in 0..cfg.sweep.sweeps_per_frame {
                if let Some(u) = wt.push_sweeps(&refs) {
                    if f > 15 {
                        if let Some(est) = u.position {
                            errs.push(est.distance(p));
                        }
                    }
                }
            }
        }
        assert!(
            errs.len() > 100,
            "expected steady tracking, got {}",
            errs.len()
        );
        let med = witrack_dsp::stats::median(&errs);
        // Reduced config has 1.77 m bins; the solver + subbin refinement
        // should still land well under a bin.
        assert!(med < 0.6, "median 3D error {med}");
    }

    /// The fixed-point front half (i16 wire samples, Q15 windowing, i32
    /// accumulation — [`WiTrack::push_sweeps_flat_q`]) must track as well
    /// as the float pipeline: the median 3D error of the quantized run may
    /// exceed the float run's by at most 1 mm. This is the accuracy gate
    /// for serving i16 wire batches without dequantization.
    #[test]
    fn quantized_front_half_tracks_within_a_millimeter_of_float() {
        let cfg = small_cfg();
        let mut wt_f = WiTrack::new(cfg).unwrap();
        let mut wt_q = WiTrack::new(cfg).unwrap();
        let array = wt_f.array().clone();
        let n = cfg.sweep.samples_per_sweep();
        let mut errs_f = Vec::new();
        let mut errs_q = Vec::new();
        for f in 0..150 {
            let s = f as f64 / 150.0;
            let p = Vec3::new(-1.0 + 2.0 * s, 4.0 + 2.0 * s, 1.2);
            let sweeps = sweeps_for(&cfg, &array, p, 1.0);
            // Quantize per frame batch the way wire encoders do: one scale
            // covering the batch peak, samples rounded to i16.
            let flat: Vec<f64> = sweeps.iter().flatten().copied().collect();
            let peak = flat.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
            let scale = if peak > 0.0 { peak / 32767.0 } else { 1.0 };
            let flat_q: Vec<i16> = flat.iter().map(|&x| (x / scale).round() as i16).collect();
            let refs: Vec<&[f64]> = sweeps.iter().map(|v| v.as_slice()).collect();
            for _ in 0..cfg.sweep.sweeps_per_frame {
                if let Some(u) = wt_f.push_sweeps(&refs) {
                    if f > 15 {
                        if let Some(est) = u.position {
                            errs_f.push(est.distance(p));
                        }
                    }
                }
                if let Some(u) = wt_q.push_sweeps_flat_q(&flat_q, n, scale) {
                    if f > 15 {
                        if let Some(est) = u.position {
                            errs_q.push(est.distance(p));
                        }
                    }
                }
            }
        }
        assert!(errs_q.len() > 100, "quantized run lost tracking");
        let med_f = witrack_dsp::stats::median(&errs_f);
        let med_q = witrack_dsp::stats::median(&errs_q);
        assert!(
            med_q <= med_f + 1e-3,
            "quantized median error {med_q} vs float {med_f}"
        );
    }

    #[test]
    fn no_position_until_all_antennas_seed() {
        let cfg = small_cfg();
        let mut wt = WiTrack::new(cfg).unwrap();
        let n = cfg.sweep.samples_per_sweep();
        let silent = vec![vec![0.0; n]; 3];
        let refs: Vec<&[f64]> = silent.iter().map(|v| v.as_slice()).collect();
        for _ in 0..cfg.sweep.sweeps_per_frame * 4 {
            if let Some(u) = wt.push_sweeps(&refs) {
                assert!(u.position.is_none());
                assert!(u.round_trips.iter().all(|r| r.is_none()));
            }
        }
    }

    #[test]
    fn held_flag_reflects_static_person() {
        let cfg = small_cfg();
        let mut wt = WiTrack::new(cfg).unwrap();
        let array = wt.array().clone();
        let p = Vec3::new(0.5, 5.0, 1.0);
        let mut updates = Vec::new();
        // Move for 40 frames (alternate two positions to keep motion), then
        // freeze (static scene → nothing after background subtraction).
        for f in 0..40 {
            let q = p + Vec3::new(0.0, 0.002 * f as f64, 0.0);
            let sweeps = sweeps_for(&cfg, &array, q, 1.0);
            let refs: Vec<&[f64]> = sweeps.iter().map(|v| v.as_slice()).collect();
            for _ in 0..cfg.sweep.sweeps_per_frame {
                if let Some(u) = wt.push_sweeps(&refs) {
                    updates.push(u);
                }
            }
        }
        let frozen = sweeps_for(&cfg, &array, p + Vec3::new(0.0, 0.08, 0.0), 1.0);
        let refs: Vec<&[f64]> = frozen.iter().map(|v| v.as_slice()).collect();
        for _ in 0..cfg.sweep.sweeps_per_frame * 20 {
            if let Some(u) = wt.push_sweeps(&refs) {
                updates.push(u);
            }
        }
        let last = updates.last().unwrap();
        assert!(last.held, "static person should be held");
        // Held positions persist (interpolation, §4.4).
        assert!(last.position.is_some());
    }

    #[test]
    fn closed_form_requires_t_geometry() {
        let mut cfg = small_cfg();
        cfg.solver = SolverChoice::ClosedForm;
        let arr = AntennaArray::t_shape_extended(Vec3::new(0.0, 0.0, 1.0), 1.0, 2);
        assert_eq!(
            WiTrack::with_array(cfg, arr).err(),
            Some(BuildError::ClosedFormNeedsTArray)
        );
    }

    #[test]
    fn least_squares_handles_five_antennas() {
        let mut cfg = small_cfg();
        cfg.solver = SolverChoice::LeastSquares;
        let arr = AntennaArray::t_shape_extended(Vec3::new(0.0, 0.0, 1.0), 1.0, 2);
        let mut wt = WiTrack::with_array(cfg, arr).unwrap();
        let array = wt.array().clone();
        assert_eq!(array.num_rx(), 5);
        let mut got_position = false;
        for f in 0..40 {
            let p = Vec3::new(0.0, 4.0 + 0.02 * f as f64, 1.0);
            let sweeps = sweeps_for(&cfg, &array, p, 1.0);
            let refs: Vec<&[f64]> = sweeps.iter().map(|v| v.as_slice()).collect();
            for _ in 0..cfg.sweep.sweeps_per_frame {
                if let Some(u) = wt.push_sweeps(&refs) {
                    if let Some(est) = u.position {
                        got_position = true;
                        assert!(est.distance(p) < 1.0, "err {}", est.distance(p));
                    }
                }
            }
        }
        assert!(got_position);
    }

    #[test]
    fn invalid_sweep_rejected_at_build() {
        let mut cfg = small_cfg();
        cfg.sweep.bandwidth_hz = -1.0;
        assert!(matches!(WiTrack::new(cfg), Err(BuildError::BadSweep(_))));
    }

    #[test]
    #[should_panic]
    fn wrong_antenna_count_panics() {
        let cfg = small_cfg();
        let mut wt = WiTrack::new(cfg).unwrap();
        let sweep = vec![0.0; cfg.sweep.samples_per_sweep()];
        let _ = wt.push_sweeps(&[&sweep, &sweep]);
    }

    #[test]
    fn reset_allows_reuse() {
        let cfg = small_cfg();
        let mut wt = WiTrack::new(cfg).unwrap();
        let array = wt.array().clone();
        let sweeps = sweeps_for(&cfg, &array, Vec3::new(0.0, 4.0, 1.0), 1.0);
        let refs: Vec<&[f64]> = sweeps.iter().map(|v| v.as_slice()).collect();
        for _ in 0..cfg.sweep.sweeps_per_frame * 3 {
            wt.push_sweeps(&refs);
        }
        wt.reset();
        let mut first = None;
        for _ in 0..cfg.sweep.sweeps_per_frame {
            first = wt.push_sweeps(&refs);
        }
        assert_eq!(first.unwrap().frame_index, 0);
    }
}
