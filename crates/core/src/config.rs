//! Pipeline configuration.

use serde::{Deserialize, Serialize};
use witrack_fmcw::{ContourConfig, DenoiseConfig, SweepConfig};
use witrack_geom::Vec3;

/// Which 3D solver turns round trips into positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverChoice {
    /// The closed-form T-array solution (the paper's precomputed symbolic
    /// solve, §7). Only valid for the exact T geometry with 3 receivers.
    ClosedForm,
    /// Damped Gauss–Newton least squares; required for ≥4 receivers or
    /// non-T geometries (§5's over-constrained extension).
    LeastSquares,
}

/// Full configuration of a [`crate::WiTrack`] pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WiTrackConfig {
    /// FMCW sweep parameters.
    pub sweep: SweepConfig,
    /// World position of the transmit antenna (crossing of the "T").
    pub array_origin: Vec3,
    /// Tx–Rx separation on the T (1 m in the paper's default setup, varied
    /// 0.25–2 m in Fig. 10).
    pub antenna_separation: f64,
    /// Range bins beyond this round-trip distance are discarded (the paper's
    /// plots stop at 30 m round trip).
    pub max_round_trip_m: f64,
    /// Contour-tracking thresholds (§4.3).
    pub contour: ContourConfig,
    /// Denoising parameters (§4.4).
    pub denoise: DenoiseConfig,
    /// 3D solver selection.
    pub solver: SolverChoice,
}

impl Default for WiTrackConfig {
    fn default() -> Self {
        WiTrackConfig {
            sweep: SweepConfig::witrack(),
            array_origin: Vec3::new(0.0, 0.0, 1.0),
            antenna_separation: 1.0,
            max_round_trip_m: 30.0,
            contour: ContourConfig::default(),
            denoise: DenoiseConfig::default(),
            solver: SolverChoice::ClosedForm,
        }
    }
}

impl WiTrackConfig {
    /// The paper's default deployment: T-array at 1 m height with 1 m
    /// separation, prototype sweep parameters.
    pub fn witrack_default() -> WiTrackConfig {
        WiTrackConfig::default()
    }

    /// Returns a copy with a different antenna separation (Fig. 10 sweeps).
    pub fn with_separation(mut self, sep: f64) -> WiTrackConfig {
        self.antenna_separation = sep;
        self
    }

    /// Returns a copy with a different sweep configuration (reduced configs
    /// for tests).
    pub fn with_sweep(mut self, sweep: SweepConfig) -> WiTrackConfig {
        self.sweep = sweep;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = WiTrackConfig::witrack_default();
        assert_eq!(c.antenna_separation, 1.0);
        assert_eq!(c.solver, SolverChoice::ClosedForm);
        assert_eq!(c.sweep.samples_per_sweep(), 2500);
        assert_eq!(c.max_round_trip_m, 30.0);
    }

    #[test]
    fn builders_override_fields() {
        let c = WiTrackConfig::witrack_default().with_separation(0.25);
        assert_eq!(c.antenna_separation, 0.25);
        let s = SweepConfig {
            sweeps_per_frame: 3,
            ..SweepConfig::witrack()
        };
        let c = c.with_sweep(s);
        assert_eq!(c.sweep.sweeps_per_frame, 3);
    }
}
