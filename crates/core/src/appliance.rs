//! Point-to-control: selecting and toggling instrumented appliances.
//!
//! The paper demos pointing-based control of "a small set of appliances that
//! we instrumented (lamp, computer screen, automatic shades)" via Insteon
//! home drivers (§6.1). The drivers are hardware; this registry is the
//! software side: given the user's hand position and pointing direction,
//! select the appliance nearest the pointing ray (within an angular
//! tolerance) and toggle its mode.

use parking_lot::RwLock;
use std::sync::Arc;
use witrack_geom::Vec3;

/// An instrumented device.
#[derive(Debug, Clone, PartialEq)]
pub struct Appliance {
    /// Display name ("lamp", "screen", "shades", …).
    pub name: String,
    /// Location in the room (m).
    pub position: Vec3,
    /// Current mode (on/off).
    pub on: bool,
}

/// A thread-safe registry of appliances (the pointing demo runs the tracker
/// and the UI on different threads).
#[derive(Debug, Clone, Default)]
pub struct ApplianceRegistry {
    inner: Arc<RwLock<Vec<Appliance>>>,
}

impl ApplianceRegistry {
    /// An empty registry.
    pub fn new() -> ApplianceRegistry {
        ApplianceRegistry::default()
    }

    /// Registers a device (initially off). Returns the registry for
    /// chaining.
    pub fn register(&self, name: &str, position: Vec3) -> &ApplianceRegistry {
        self.inner.write().push(Appliance {
            name: name.to_string(),
            position,
            on: false,
        });
        self
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot of all devices.
    pub fn snapshot(&self) -> Vec<Appliance> {
        self.inner.read().clone()
    }

    /// The device best aligned with a pointing ray from `origin` along
    /// `direction`, if any falls within `max_angle_deg` of the ray.
    pub fn select(&self, origin: Vec3, direction: Vec3, max_angle_deg: f64) -> Option<Appliance> {
        let dir = direction.normalized()?;
        let guard = self.inner.read();
        let mut best: Option<(f64, &Appliance)> = None;
        for a in guard.iter() {
            let Some(angle) = (a.position - origin).angle_to(dir) else {
                continue;
            };
            let deg = angle.to_degrees();
            if deg <= max_angle_deg && best.map(|(b, _)| deg < b).unwrap_or(true) {
                best = Some((deg, a));
            }
        }
        best.map(|(_, a)| a.clone())
    }

    /// Toggles the named device; returns its new state, or `None` if absent.
    pub fn toggle(&self, name: &str) -> Option<bool> {
        let mut guard = self.inner.write();
        let dev = guard.iter_mut().find(|a| a.name == name)?;
        dev.on = !dev.on;
        Some(dev.on)
    }

    /// Convenience for the demo: select by pointing ray and toggle in one
    /// step. Returns the toggled device.
    pub fn point_and_toggle(
        &self,
        origin: Vec3,
        direction: Vec3,
        max_angle_deg: f64,
    ) -> Option<Appliance> {
        let target = self.select(origin, direction, max_angle_deg)?;
        self.toggle(&target.name);
        self.snapshot().into_iter().find(|a| a.name == target.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> ApplianceRegistry {
        let reg = ApplianceRegistry::new();
        reg.register("lamp", Vec3::new(2.0, 6.0, 1.2));
        reg.register("screen", Vec3::new(-2.0, 5.0, 1.0));
        reg.register("shades", Vec3::new(0.0, 9.0, 1.5));
        reg
    }

    #[test]
    fn selects_best_aligned_device() {
        let reg = demo_registry();
        let origin = Vec3::new(0.0, 4.0, 1.0);
        let toward_lamp = Vec3::new(2.0, 2.0, 0.2);
        let hit = reg.select(origin, toward_lamp, 25.0).unwrap();
        assert_eq!(hit.name, "lamp");
    }

    #[test]
    fn angular_tolerance_rejects_far_pointing() {
        let reg = demo_registry();
        let origin = Vec3::new(0.0, 4.0, 1.0);
        // Pointing straight up: nothing within 25°.
        assert!(reg.select(origin, Vec3::Z, 25.0).is_none());
        // Degenerate direction.
        assert!(reg.select(origin, Vec3::ZERO, 25.0).is_none());
    }

    #[test]
    fn toggle_flips_state() {
        let reg = demo_registry();
        assert_eq!(reg.toggle("lamp"), Some(true));
        assert_eq!(reg.toggle("lamp"), Some(false));
        assert_eq!(reg.toggle("fridge"), None);
    }

    #[test]
    fn point_and_toggle_round_trip() {
        let reg = demo_registry();
        let origin = Vec3::new(0.0, 4.0, 1.0);
        let toward_shades = Vec3::new(0.0, 5.0, 0.5);
        let dev = reg.point_and_toggle(origin, toward_shades, 25.0).unwrap();
        assert_eq!(dev.name, "shades");
        assert!(dev.on);
        // Registry state actually changed.
        let snap = reg.snapshot();
        assert!(snap.iter().find(|a| a.name == "shades").unwrap().on);
        assert!(!snap.iter().find(|a| a.name == "lamp").unwrap().on);
    }

    #[test]
    fn registry_is_shared_between_clones() {
        let reg = demo_registry();
        let clone = reg.clone();
        clone.toggle("screen");
        assert!(
            reg.snapshot()
                .iter()
                .find(|a| a.name == "screen")
                .unwrap()
                .on
        );
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }
}
