//! A streaming event layer over the pipeline: presence, motion state, and
//! fall alarms as discrete events.
//!
//! [`WiTrack`](crate::WiTrack) emits one [`TrackUpdate`]
//! per frame — 80 per second. Applications (home automation, elderly-care
//! alerting, the gaming demo) want *edges*, not frames: "a person appeared",
//! "they stopped moving", "they fell". [`EventDetector`] turns the frame
//! stream into exactly those edges, debounced against single-frame flicker.

use crate::fall::{FallConfig, FallDetector, FallEvent};
use crate::pipeline::TrackUpdate;
use witrack_geom::Vec3;

/// A discrete event derived from the tracking stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A moving person entered the monitored space (first stable fix).
    PersonDetected {
        /// Time of the first stable fix (s).
        time_s: f64,
        /// Where they appeared.
        position: Vec3,
    },
    /// The person stopped moving (the pipeline is now interpolating).
    BecameStill {
        /// Time the stillness was confirmed (s).
        time_s: f64,
        /// The held position.
        position: Vec3,
    },
    /// The person resumed moving after a still period.
    ResumedMoving {
        /// Time motion resumed (s).
        time_s: f64,
        /// Where motion resumed.
        position: Vec3,
    },
    /// A fall was detected (§6.2).
    Fall(FallEvent),
}

impl Event {
    /// The event timestamp (s).
    pub fn time_s(&self) -> f64 {
        match *self {
            Event::PersonDetected { time_s, .. }
            | Event::BecameStill { time_s, .. }
            | Event::ResumedMoving { time_s, .. } => time_s,
            Event::Fall(e) => e.time_s,
        }
    }
}

/// Debounce/tuning for [`EventDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Consecutive measured (non-held) frames required to declare presence
    /// or resumed motion.
    pub presence_frames: usize,
    /// Consecutive held frames required to declare stillness (~0.5 s at the
    /// paper's 80 fps).
    pub still_frames: usize,
    /// Fall-rule tuning.
    pub fall: FallConfig,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            presence_frames: 8,
            still_frames: 40,
            fall: FallConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MotionState {
    NoPerson,
    Moving,
    Still,
}

/// Converts the per-frame stream into debounced events.
#[derive(Debug, Clone)]
pub struct EventDetector {
    cfg: EventConfig,
    state: MotionState,
    measured_run: usize,
    held_run: usize,
    falls: FallDetector,
}

impl EventDetector {
    /// Creates a detector in the "no person" state.
    pub fn new(cfg: EventConfig) -> EventDetector {
        EventDetector {
            falls: FallDetector::new(cfg.fall),
            cfg,
            state: MotionState::NoPerson,
            measured_run: 0,
            held_run: 0,
        }
    }

    /// Current high-level state as a string (for UIs/logs).
    pub fn state_label(&self) -> &'static str {
        match self.state {
            MotionState::NoPerson => "no person",
            MotionState::Moving => "moving",
            MotionState::Still => "still",
        }
    }

    /// Feeds one frame; returns the events it triggered (usually none).
    pub fn push(&mut self, update: &TrackUpdate) -> Vec<Event> {
        let mut events = Vec::new();
        let Some(position) = update.position else {
            // No solution at all: nothing to say yet (pre-seed phase).
            self.measured_run = 0;
            return events;
        };
        if update.held {
            self.held_run += 1;
            self.measured_run = 0;
        } else {
            self.measured_run += 1;
            self.held_run = 0;
        }

        match self.state {
            MotionState::NoPerson => {
                if self.measured_run >= self.cfg.presence_frames {
                    self.state = MotionState::Moving;
                    events.push(Event::PersonDetected {
                        time_s: update.time_s,
                        position,
                    });
                }
            }
            MotionState::Moving => {
                if self.held_run >= self.cfg.still_frames {
                    self.state = MotionState::Still;
                    events.push(Event::BecameStill {
                        time_s: update.time_s,
                        position,
                    });
                }
            }
            MotionState::Still => {
                if self.measured_run >= self.cfg.presence_frames {
                    self.state = MotionState::Moving;
                    events.push(Event::ResumedMoving {
                        time_s: update.time_s,
                        position,
                    });
                }
            }
        }

        // Fall detection runs on every positioned frame regardless of state.
        if self.state != MotionState::NoPerson {
            if let Some(fall) = self.falls.push(update.time_s, position.z) {
                events.push(Event::Fall(fall));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(i: u64, pos: Option<Vec3>, held: bool) -> TrackUpdate {
        TrackUpdate {
            frame_index: i,
            time_s: i as f64 * 0.0125,
            round_trips: vec![],
            position: pos,
            held,
            frames: vec![],
        }
    }

    #[test]
    fn presence_requires_stable_fixes() {
        let mut det = EventDetector::new(EventConfig::default());
        assert_eq!(det.state_label(), "no person");
        // 7 measured frames: not yet.
        for i in 0..7 {
            let ev = det.push(&update(i, Some(Vec3::new(0.0, 5.0, 1.0)), false));
            assert!(ev.is_empty(), "frame {i} fired early");
        }
        // 8th: detected.
        let ev = det.push(&update(7, Some(Vec3::new(0.0, 5.0, 1.0)), false));
        assert!(matches!(ev.as_slice(), [Event::PersonDetected { .. }]));
        assert_eq!(det.state_label(), "moving");
    }

    #[test]
    fn flicker_does_not_declare_presence() {
        let mut det = EventDetector::new(EventConfig::default());
        for i in 0..100 {
            // Alternating one fix, one dropout.
            let pos = (i % 2 == 0).then_some(Vec3::new(0.0, 5.0, 1.0));
            let ev = det.push(&update(i, pos, false));
            assert!(ev.is_empty());
        }
        assert_eq!(det.state_label(), "no person");
    }

    #[test]
    fn still_and_resume_cycle() {
        let mut det = EventDetector::new(EventConfig::default());
        let p = Vec3::new(1.0, 4.0, 1.0);
        let mut i = 0;
        let mut all = Vec::new();
        for _ in 0..10 {
            all.extend(det.push(&update(i, Some(p), false)));
            i += 1;
        }
        for _ in 0..45 {
            all.extend(det.push(&update(i, Some(p), true)));
            i += 1;
        }
        for _ in 0..10 {
            all.extend(det.push(&update(i, Some(p), false)));
            i += 1;
        }
        let kinds: Vec<&'static str> = all
            .iter()
            .map(|e| match e {
                Event::PersonDetected { .. } => "detected",
                Event::BecameStill { .. } => "still",
                Event::ResumedMoving { .. } => "resumed",
                Event::Fall(_) => "fall",
            })
            .collect();
        assert_eq!(kinds, vec!["detected", "still", "resumed"]);
        // Events carry monotonically increasing times.
        let times: Vec<f64> = all.iter().map(|e| e.time_s()).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn fall_event_is_forwarded() {
        let mut det = EventDetector::new(EventConfig::default());
        let mut i = 0;
        let mut saw_fall = false;
        // Walk at 1 m elevation for 6 s.
        for _ in 0..480 {
            det.push(&update(i, Some(Vec3::new(0.0, 5.0, 1.0)), false));
            i += 1;
        }
        // Fast drop to the floor over 0.4 s, then settle.
        for k in 0..32 {
            let s = k as f64 / 32.0;
            let z = 1.0 + (0.1 - 1.0) * (s * s * (3.0 - 2.0 * s));
            det.push(&update(i, Some(Vec3::new(0.0, 5.0, z)), false));
            i += 1;
        }
        for _ in 0..80 {
            let ev = det.push(&update(i, Some(Vec3::new(0.0, 5.0, 0.1)), true));
            i += 1;
            if ev.iter().any(|e| matches!(e, Event::Fall(_))) {
                saw_fall = true;
            }
        }
        assert!(saw_fall, "fall not forwarded through the event layer");
    }

    #[test]
    fn no_position_frames_are_inert() {
        let mut det = EventDetector::new(EventConfig::default());
        for i in 0..50 {
            assert!(det.push(&update(i, None, false)).is_empty());
        }
        assert_eq!(det.state_label(), "no person");
    }
}
