//! A collected trajectory with evaluation helpers.

use crate::pipeline::TrackUpdate;
use witrack_geom::Vec3;

/// A time-ordered sequence of (time, position) samples — what the pipeline
/// produced over one experiment.
#[derive(Debug, Clone, Default)]
pub struct Track {
    samples: Vec<(f64, Vec3)>,
    held_flags: Vec<bool>,
}

impl Track {
    /// An empty track.
    pub fn new() -> Track {
        Track::default()
    }

    /// Appends the position (if solved) from a pipeline update.
    pub fn push_update(&mut self, u: &TrackUpdate) {
        if let Some(p) = u.position {
            self.samples.push((u.time_s, p));
            self.held_flags.push(u.held);
        }
    }

    /// Appends a raw (time, position) sample.
    pub fn push(&mut self, time_s: f64, position: Vec3) {
        self.push_with_held(time_s, position, false);
    }

    /// Appends a sample with an explicit held/interpolated flag — used by
    /// the multi-target tracker, whose coasting phases are the per-track
    /// analogue of the single-target §4.4 hold.
    pub fn push_with_held(&mut self, time_s: f64, position: Vec3, held: bool) {
        self.samples.push((time_s, position));
        self.held_flags.push(held);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the track is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(f64, Vec3)] {
        &self.samples
    }

    /// The elevation series `(t, z)` — input to the fall detector.
    pub fn elevations(&self) -> Vec<(f64, f64)> {
        self.samples.iter().map(|&(t, p)| (t, p.z)).collect()
    }

    /// Position at time `t` by nearest-sample lookup (`None` when empty).
    pub fn at(&self, t: f64) -> Option<Vec3> {
        if self.samples.is_empty() {
            return None;
        }
        let idx = self.samples.partition_point(|&(ts, _)| ts < t);
        let candidates = [idx.checked_sub(1), Some(idx)];
        candidates
            .iter()
            .flatten()
            .filter_map(|&i| self.samples.get(i))
            .min_by(|a, b| {
                let da = (a.0 - t).abs();
                let db = (b.0 - t).abs();
                da.total_cmp(&db) // NaN sorts last: never selected over a real time
            })
            .map(|&(_, p)| p)
    }

    /// Fraction of samples that were held/interpolated rather than measured.
    pub fn held_fraction(&self) -> f64 {
        if self.held_flags.is_empty() {
            return 0.0;
        }
        self.held_flags.iter().filter(|&&h| h).count() as f64 / self.held_flags.len() as f64
    }

    /// Total distance traveled along the track (m).
    pub fn path_length(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| w[0].1.distance(w[1].1))
            .sum()
    }

    /// Time span `(first, last)` covered, or `None` when empty.
    pub fn time_span(&self) -> Option<(f64, f64)> {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(a, _)), Some(&(b, _))) => Some((a, b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Track {
        let mut t = Track::new();
        t.push(0.0, Vec3::new(0.0, 0.0, 1.0));
        t.push(1.0, Vec3::new(1.0, 0.0, 1.0));
        t.push(2.0, Vec3::new(1.0, 1.0, 0.5));
        t
    }

    #[test]
    fn basic_accessors() {
        let t = demo();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.time_span(), Some((0.0, 2.0)));
        assert!((t.path_length() - (1.0 + (1.0f64 + 0.25).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn elevations_extract_z() {
        let zs = demo().elevations();
        assert_eq!(zs, vec![(0.0, 1.0), (1.0, 1.0), (2.0, 0.5)]);
    }

    #[test]
    fn nearest_sample_lookup() {
        let t = demo();
        assert_eq!(t.at(0.1).unwrap(), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(t.at(0.9).unwrap(), Vec3::new(1.0, 0.0, 1.0));
        assert_eq!(t.at(5.0).unwrap(), Vec3::new(1.0, 1.0, 0.5));
        assert_eq!(t.at(-1.0).unwrap(), Vec3::new(0.0, 0.0, 1.0));
        assert!(Track::new().at(0.0).is_none());
    }

    #[test]
    fn held_fraction_counts() {
        let mut t = Track::new();
        assert_eq!(t.held_fraction(), 0.0);
        t.push(0.0, Vec3::ZERO);
        assert_eq!(t.held_fraction(), 0.0);
    }
}
