//! Backend-agnostic streaming interface over the frame pipelines.
//!
//! [`WiTrack`] and `witrack_mtt::MultiWiTrack` share the
//! same streaming shape — one baseband sweep per receive antenna per sweep
//! interval in, one output per frame out — but emit different update types
//! (one optional position vs N track snapshots). The serving layer
//! (`witrack-serve`) multiplexes many sensors over worker shards and must
//! not care which backend a sensor runs, so this module extracts the shared
//! shape as the [`FramePipeline`] trait and a lowest-common-denominator
//! per-frame [`FrameReport`].
//!
//! The trait deliberately returns owned reports rather than borrowed
//! frames: a shard forwards reports across threads and batches them into
//! wire messages, so the borrow-heavy single-pipeline API
//! ([`WiTrack::push_sweeps`] keeps its richer
//! [`TrackUpdate`]) is not usable there.

use crate::pipeline::{TrackUpdate, WiTrack};
use witrack_geom::Vec3;

/// One tracked target inside a [`FrameReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetReport {
    /// Stable track identifier, when the backend tracks identity
    /// (`MultiWiTrack`); `None` for the single-target pipeline.
    pub id: Option<u64>,
    /// Estimated 3D position.
    pub position: Vec3,
    /// Velocity estimate, when the backend smooths one.
    pub velocity: Option<Vec3>,
    /// `true` when this target is interpolated/coasting rather than
    /// freshly measured this frame.
    pub held: bool,
    /// Per-axis position variance (m²) of the estimate, when the backend
    /// carries a state covariance (`MultiWiTrack`'s per-track Kalman).
    /// Cross-sensor fusion (`witrack-fuse`) gates and merges on it;
    /// backends without one report `None` and fusion falls back to a
    /// configured default. Not carried by the v1 `UpdateBatch` wire
    /// message (world-level uncertainty travels in `WorldUpdate` instead).
    pub pos_var: Option<Vec3>,
    /// The last accepted measurement's per-axis innovation (m): how far
    /// the measurement landed from the track's prediction. `None` until a
    /// track's second accepted measurement, and for backends without a
    /// per-track filter.
    pub innovation: Option<Vec3>,
}

/// One frame's backend-agnostic output: everything the serving layer
/// forwards to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// Frame counter since the stream began.
    pub frame_index: u64,
    /// Time (s) at the end of the frame.
    pub time_s: f64,
    /// All reportable targets this frame (possibly empty).
    pub targets: Vec<TargetReport>,
}

/// A streaming tracker: sweeps in, one [`FrameReport`] per frame out.
///
/// `Send` is a supertrait because implementations are owned by worker
/// shards and moved across threads at session setup.
pub trait FramePipeline: Send {
    /// Number of receive antennas (one sweep slice expected per antenna).
    fn num_rx(&self) -> usize;

    /// Pushes one sweep interval's baseband, one slice per receive
    /// antenna; returns a report on frame boundaries.
    fn process_sweeps(&mut self, per_rx: &[&[f64]]) -> Option<FrameReport>;

    /// [`Self::process_sweeps`] over one flat, antenna-contiguous buffer:
    /// antenna `k`'s sweep occupies
    /// `flat[k * samples_per_sweep ..][.. samples_per_sweep]` — the exact
    /// layout wire sweep batches arrive in, so the serving hot path feeds
    /// pipelines without building per-sweep slice tables. The default
    /// builds the table and delegates; the in-tree backends override it
    /// allocation-free.
    ///
    /// # Panics
    /// Panics if `flat.len() != samples_per_sweep * num_rx()` or
    /// `samples_per_sweep` is zero.
    fn process_sweeps_flat(
        &mut self,
        flat: &[f64],
        samples_per_sweep: usize,
    ) -> Option<FrameReport> {
        assert!(samples_per_sweep > 0, "sweeps cannot be empty");
        assert_eq!(
            flat.len(),
            samples_per_sweep * self.num_rx(),
            "one sweep per receive antenna, packed contiguously"
        );
        let refs: Vec<&[f64]> = flat.chunks_exact(samples_per_sweep).collect();
        self.process_sweeps(&refs)
    }

    /// [`Self::process_sweeps_flat`] over **wire-quantized** samples
    /// (`sample = q · scale`), the form `SweepBatchQ` batches arrive in.
    /// The default dequantizes into a temporary and delegates, so every
    /// backend accepts quantized input; the in-tree backends override it
    /// to keep the profile front half in fixed point (i16 windowing, i32
    /// accumulation — see `witrack_fmcw::RangeProfiler::push_sweep_q`),
    /// skipping both the dequantization pass and the float accumulate.
    ///
    /// # Panics
    /// Panics if `flat.len() != samples_per_sweep * num_rx()` or
    /// `samples_per_sweep` is zero.
    fn process_sweeps_flat_q(
        &mut self,
        flat: &[i16],
        samples_per_sweep: usize,
        scale: f64,
    ) -> Option<FrameReport> {
        let dequantized: Vec<f64> = flat.iter().map(|&q| q as f64 * scale).collect();
        self.process_sweeps_flat(&dequantized, samples_per_sweep)
    }

    /// Clears all stream state (frame counter restarts at zero).
    fn reset(&mut self);

    /// Attaches per-stage latency histograms
    /// ([`witrack_obs::StageStats`]): the backend records its
    /// profile/detect/associate stage wall times into them on every
    /// frame-completing push. The default ignores the attachment
    /// (backends without stage instrumentation stay valid); the in-tree
    /// backends override it.
    fn attach_stage_stats(&mut self, stats: witrack_obs::StageStats) {
        let _ = stats;
    }
}

impl From<TrackUpdate> for FrameReport {
    fn from(u: TrackUpdate) -> FrameReport {
        FrameReport {
            frame_index: u.frame_index,
            time_s: u.time_s,
            targets: u
                .position
                .map(|p| TargetReport {
                    id: None,
                    position: p,
                    velocity: None,
                    held: u.held,
                    pos_var: None,
                    innovation: None,
                })
                .into_iter()
                .collect(),
        }
    }
}

impl FramePipeline for WiTrack {
    fn num_rx(&self) -> usize {
        self.array().num_rx()
    }

    fn process_sweeps(&mut self, per_rx: &[&[f64]]) -> Option<FrameReport> {
        self.push_sweeps(per_rx).map(FrameReport::from)
    }

    fn process_sweeps_flat(
        &mut self,
        flat: &[f64],
        samples_per_sweep: usize,
    ) -> Option<FrameReport> {
        self.push_sweeps_flat(flat, samples_per_sweep)
            .map(FrameReport::from)
    }

    fn process_sweeps_flat_q(
        &mut self,
        flat: &[i16],
        samples_per_sweep: usize,
        scale: f64,
    ) -> Option<FrameReport> {
        self.push_sweeps_flat_q(flat, samples_per_sweep, scale)
            .map(FrameReport::from)
    }

    fn reset(&mut self) {
        WiTrack::reset(self);
    }

    fn attach_stage_stats(&mut self, stats: witrack_obs::StageStats) {
        WiTrack::attach_stage_stats(self, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WiTrackConfig;
    use witrack_fmcw::SweepConfig;

    fn quick_cfg() -> WiTrackConfig {
        WiTrackConfig {
            sweep: SweepConfig {
                start_freq_hz: 5.56e8,
                bandwidth_hz: 1.69e8,
                sweep_duration_s: 1e-3,
                sample_rate_hz: 100e3,
                sweeps_per_frame: 5,
                transmit_power_w: 1e-3,
            },
            max_round_trip_m: 40.0,
            ..WiTrackConfig::witrack_default()
        }
    }

    #[test]
    fn witrack_reports_through_the_trait() {
        let cfg = quick_cfg();
        let mut wt = WiTrack::new(cfg).unwrap();
        let pipeline: &mut dyn FramePipeline = &mut wt;
        assert_eq!(pipeline.num_rx(), 3);
        let silent = vec![0.0; cfg.sweep.samples_per_sweep()];
        let mut reports = 0;
        for _ in 0..cfg.sweep.sweeps_per_frame * 3 {
            if let Some(r) = pipeline.process_sweeps(&[&silent, &silent, &silent]) {
                // Nothing moving: a report with no targets, not no report.
                assert!(r.targets.is_empty());
                reports += 1;
            }
        }
        assert_eq!(reports, 3);
        pipeline.reset();
        let mut first = None;
        for _ in 0..cfg.sweep.sweeps_per_frame {
            first = pipeline.process_sweeps(&[&silent, &silent, &silent]);
        }
        assert_eq!(first.unwrap().frame_index, 0);
    }

    #[test]
    fn track_update_with_position_becomes_one_target() {
        let u = TrackUpdate {
            frame_index: 7,
            time_s: 0.5,
            round_trips: vec![Some(8.0); 3],
            position: Some(Vec3::new(1.0, 4.0, 1.2)),
            held: true,
            frames: Vec::new(),
        };
        let r = FrameReport::from(u);
        assert_eq!(r.frame_index, 7);
        assert_eq!(r.targets.len(), 1);
        assert_eq!(r.targets[0].id, None);
        assert!(r.targets[0].held);
    }
}
