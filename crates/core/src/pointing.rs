//! Pointing-direction estimation (paper §6.1, evaluated in §9.4).
//!
//! The user stands still, raises an arm toward a target, holds, and drops
//! it. WiTrack:
//!
//! 1. tells arm motion from whole-body motion by the *spatial variance* of
//!    the spectrogram (an arm is a small reflector → a narrow stripe; a
//!    body plus its dynamic multipath → a wide smear — Fig. 5);
//! 2. segments the lift and drop strokes, which are bracketed by ≥ 1 s of
//!    stillness per the gesture protocol;
//! 3. robust-regresses each antenna's round-trip distances over each stroke
//!    and evaluates the fits at the stroke endpoints;
//! 4. localizes the hand's start/end positions from the three per-antenna
//!    endpoint distances (§5 geometry);
//! 5. estimates the pointing direction per stroke and returns the *middle
//!    direction* of the lift and drop estimates — the mirror trick that
//!    "adds significant robustness" (§6.1).

use serde::{Deserialize, Serialize};
use witrack_dsp::peak;
use witrack_dsp::regression;
use witrack_fmcw::TofFrame;
use witrack_geom::{TArray, Vec3};

/// Tuning for the gesture segmenter/estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointingConfig {
    /// Required stillness before a stroke for it to count as a gesture
    /// (the §6.1 protocol asks for ~1 s).
    pub min_still_s: f64,
    /// Strokes shorter than this are noise blips (s).
    pub min_stroke_s: f64,
    /// Strokes longer than this are not arm gestures (s).
    pub max_stroke_s: f64,
    /// Frames with no detection tolerated inside one stroke.
    pub max_gap_frames: usize,
    /// Median spectral spread (bins²) above which a stroke is whole-body
    /// motion rather than an arm.
    pub arm_spread_max: f64,
}

impl Default for PointingConfig {
    fn default() -> Self {
        PointingConfig {
            min_still_s: 0.75,
            min_stroke_s: 0.2,
            max_stroke_s: 2.0,
            max_gap_frames: 3,
            arm_spread_max: 6.0,
        }
    }
}

/// A successful direction estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointingEstimate {
    /// The estimated pointing direction (unit vector): the mean of the lift
    /// and drop stroke directions.
    pub direction: Vec3,
    /// Hand position at the start of the lift stroke.
    pub hand_start: Vec3,
    /// Hand position at full extension (end of lift).
    pub hand_end: Vec3,
    /// Direction from the lift stroke alone.
    pub lift_direction: Vec3,
    /// Direction from the drop stroke alone (reversed to point outward).
    pub drop_direction: Vec3,
    /// `(start, end)` times of the lift stroke (s).
    pub lift_window: (f64, f64),
    /// `(start, end)` times of the drop stroke (s).
    pub drop_window: (f64, f64),
}

/// Why no estimate could be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointingError {
    /// The recording is shorter than one stroke.
    TooFewFrames,
    /// No arm-like stroke pair (lift + drop) was found.
    NoStrokesFound,
    /// The per-antenna regression failed (too few detections in a stroke).
    RegressionFailed,
    /// The endpoint geometry had no solution.
    LocalizationFailed,
}

impl std::fmt::Display for PointingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PointingError::TooFewFrames => "recording too short",
            PointingError::NoStrokesFound => "no arm-like lift+drop stroke pair found",
            PointingError::RegressionFailed => "too few detections to regress a stroke",
            PointingError::LocalizationFailed => "stroke endpoints had no 3D solution",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PointingError {}

/// A segmented motion burst.
#[derive(Debug, Clone, Copy)]
struct Stroke {
    first_frame: usize,
    last_frame: usize,
    t_start: f64,
    t_end: f64,
    median_spread: f64,
}

/// Offline pointing estimator for a T-array deployment.
#[derive(Debug, Clone)]
pub struct PointingEstimator {
    cfg: PointingConfig,
    tarray: TArray,
    frame_duration_s: f64,
}

impl PointingEstimator {
    /// Creates an estimator for recordings made with `tarray` at the given
    /// frame rate.
    pub fn new(cfg: PointingConfig, tarray: TArray, frame_duration_s: f64) -> PointingEstimator {
        PointingEstimator {
            cfg,
            tarray,
            frame_duration_s,
        }
    }

    /// Estimates the pointing direction from per-antenna frame recordings
    /// (`frames[k][i]` = antenna `k`, frame `i`).
    pub fn estimate(&self, frames: &[Vec<TofFrame>]) -> Result<PointingEstimate, PointingError> {
        let n_frames = frames.iter().map(|f| f.len()).min().unwrap_or(0);
        let min_frames = (self.cfg.min_stroke_s / self.frame_duration_s) as usize + 2;
        if n_frames < min_frames {
            return Err(PointingError::TooFewFrames);
        }

        let strokes = self.segment(frames, n_frames);
        let arm_strokes: Vec<&Stroke> = strokes
            .iter()
            .filter(|s| s.median_spread <= self.cfg.arm_spread_max)
            .collect();
        if arm_strokes.len() < 2 {
            return Err(PointingError::NoStrokesFound);
        }
        // The gesture is the last lift+drop pair.
        let lift = arm_strokes[arm_strokes.len() - 2];
        let drop = arm_strokes[arm_strokes.len() - 1];

        let (lift_start, lift_end) = self.stroke_endpoints(frames, lift)?;
        let (drop_start, drop_end) = self.stroke_endpoints(frames, drop)?;

        let lift_dir = (lift_end - lift_start)
            .normalized()
            .ok_or(PointingError::LocalizationFailed)?;
        // The drop retraces the motion: extended → rest, so the outward
        // direction is start − end.
        let drop_dir = (drop_start - drop_end)
            .normalized()
            .ok_or(PointingError::LocalizationFailed)?;
        let direction = (lift_dir + drop_dir)
            .normalized()
            .ok_or(PointingError::LocalizationFailed)?;

        Ok(PointingEstimate {
            direction,
            hand_start: lift_start,
            hand_end: lift_end,
            lift_direction: lift_dir,
            drop_direction: drop_dir,
            lift_window: (lift.t_start, lift.t_end),
            drop_window: (drop.t_start, drop.t_end),
        })
    }

    /// Splits the recording into motion bursts with gap tolerance, computing
    /// each burst's spectral-spread feature.
    fn segment(&self, frames: &[Vec<TofFrame>], n_frames: usize) -> Vec<Stroke> {
        let majority = frames.len().div_ceil(2);
        let active: Vec<bool> = (0..n_frames)
            .map(|i| frames.iter().filter(|f| f[i].detection.is_some()).count() >= majority)
            .collect();

        let min_frames = (self.cfg.min_stroke_s / self.frame_duration_s).round() as usize;
        let max_frames = (self.cfg.max_stroke_s / self.frame_duration_s).round() as usize;
        let still_frames = (self.cfg.min_still_s / self.frame_duration_s).round() as usize;

        let mut strokes = Vec::new();
        let mut i = 0;
        while i < n_frames {
            if !active[i] {
                i += 1;
                continue;
            }
            // Extend the burst with gap tolerance.
            let start = i;
            let mut end = i;
            let mut gap = 0;
            let mut j = i + 1;
            while j < n_frames && gap <= self.cfg.max_gap_frames {
                if active[j] {
                    end = j;
                    gap = 0;
                } else {
                    gap += 1;
                }
                j += 1;
            }
            i = j;
            let len = end - start + 1;
            if len < min_frames.max(2) || len > max_frames {
                continue;
            }
            // Require stillness before the burst.
            let still_from = start.saturating_sub(still_frames);
            if start > 0 && active[still_from..start].iter().any(|&a| a) {
                continue;
            }
            // Spread feature: median over antennas and frames of the
            // power-weighted spectral spread, computed over *significant*
            // bins only. Thresholding at the noise floor is not enough: for
            // a weak arm echo the scattered noise bins just above the floor
            // dominate the variance (uniform scatter over N bins has spread
            // ~N²/12) and would invert the feature. Bins below a quarter of
            // the frame peak are zeroed instead, which keeps the body's
            // dynamic-multipath lobes (comparable to its direct echo) while
            // discarding noise.
            let mut spreads = Vec::new();
            for f in frames {
                for frame in &f[start..=end] {
                    if let Some(det) = frame.detection {
                        let peak_mag = frame.magnitudes.iter().cloned().fold(0.0_f64, f64::max);
                        let thresh = det.noise_floor.max(0.25 * peak_mag);
                        let cleaned: Vec<f64> = frame
                            .magnitudes
                            .iter()
                            .map(|&m| if m < thresh { 0.0 } else { m })
                            .collect();
                        if let Some(s) = peak::spread(&cleaned) {
                            spreads.push(s);
                        }
                    }
                }
            }
            let median_spread = if spreads.is_empty() {
                f64::INFINITY
            } else {
                witrack_dsp::stats::median_in_place(&mut spreads)
            };
            strokes.push(Stroke {
                first_frame: start,
                last_frame: end,
                t_start: frames[0][start].time_s,
                t_end: frames[0][end].time_s,
                median_spread,
            });
        }
        strokes
    }

    /// Robust-regresses each antenna's raw round trips over the stroke and
    /// localizes the hand at the stroke's endpoints.
    fn stroke_endpoints(
        &self,
        frames: &[Vec<TofFrame>],
        stroke: &Stroke,
    ) -> Result<(Vec3, Vec3), PointingError> {
        let mut r_start = [0.0; 3];
        let mut r_end = [0.0; 3];
        for (k, antenna_frames) in frames.iter().enumerate().take(3) {
            let mut ts = Vec::new();
            let mut rs = Vec::new();
            for frame in &antenna_frames[stroke.first_frame..=stroke.last_frame] {
                if let Some(d) = frame.detection {
                    ts.push(frame.time_s);
                    rs.push(d.round_trip_m);
                }
            }
            let line =
                regression::robust_line(&ts, &rs).map_err(|_| PointingError::RegressionFailed)?;
            r_start[k] = line.at(stroke.t_start);
            r_end[k] = line.at(stroke.t_end);
        }
        let start = self
            .tarray
            .solve(r_start)
            .map_err(|_| PointingError::LocalizationFailed)?;
        let end = self
            .tarray
            .solve(r_end)
            .map_err(|_| PointingError::LocalizationFailed)?;
        Ok((start, end))
    }
}

/// Angle in degrees between an estimate and the true direction — the Fig. 11
/// error metric.
pub fn angular_error_deg(estimate: Vec3, truth: Vec3) -> f64 {
    estimate
        .angle_to(truth)
        .map(|r| r.to_degrees())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use witrack_fmcw::contour::Detection;

    const DT: f64 = 0.0125;

    fn tarray() -> TArray {
        TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0)
    }

    /// Fabricates a frame with an optional detection and a magnitude profile
    /// of the requested spectral width.
    fn frame(i: usize, rt: Option<f64>, wide: bool) -> TofFrame {
        let mut mags = vec![0.01; 120];
        let detection = rt.map(|r| {
            let bin = r / 0.1775; // paper bin spacing
            let sigma = if wide { 12.0 } else { 1.2 };
            for (j, m) in mags.iter_mut().enumerate() {
                *m += (-((j as f64 - bin) / sigma).powi(2)).exp();
            }
            Detection {
                bin,
                round_trip_m: r,
                magnitude: 1.0,
                noise_floor: 0.05,
            }
        });
        TofFrame {
            frame_index: i as u64,
            time_s: i as f64 * DT,
            magnitudes: mags,
            detection,
            denoised: None,
        }
    }

    /// Builds a three-antenna recording of a full gesture from hand
    /// positions: still, lift (rest→ext), still, drop (ext→rest), still.
    fn gesture_recording(rest: Vec3, ext: Vec3) -> Vec<Vec<TofFrame>> {
        let t = tarray();
        let arr = t.antenna_array();
        let phase = |i: usize| -> Option<(Vec3, bool)> {
            // 0..96 still; 96..144 lift (0.6 s); 144..240 hold; 240..288 drop.
            if i < 96 {
                None
            } else if i < 144 {
                Some((rest.lerp(ext, (i - 96) as f64 / 48.0), false))
            } else if i < 240 {
                None
            } else if i < 288 {
                Some((ext.lerp(rest, (i - 240) as f64 / 48.0), false))
            } else {
                None
            }
        };
        (0..3)
            .map(|k| {
                (0..340)
                    .map(|i| match phase(i) {
                        Some((hand, wide)) => frame(i, Some(arr.round_trip(hand, k)), wide),
                        None => frame(i, None, false),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_direction_of_clean_gesture() {
        let stance = Vec3::new(0.5, 5.0, 1.0);
        let dir = Vec3::new(0.4, 0.8, 0.25).normalized().unwrap();
        let rest = stance + Vec3::new(0.15, 0.0, -0.35);
        let ext = stance + Vec3::new(0.0, 0.0, 0.45) + dir * 0.68;
        let frames = gesture_recording(rest, ext);
        let est = PointingEstimator::new(PointingConfig::default(), tarray(), DT)
            .estimate(&frames)
            .unwrap();
        // The estimator measures rest→extended, which differs from the
        // shoulder-anchored direction; compare against the actual hand
        // displacement.
        let truth = (ext - rest).normalized().unwrap();
        let err = angular_error_deg(est.direction, truth);
        assert!(err < 5.0, "angular error {err}°");
        assert!(est.hand_start.distance(rest) < 0.3);
        assert!(est.hand_end.distance(ext) < 0.3);
        // Lift precedes drop.
        assert!(est.lift_window.1 <= est.drop_window.0);
    }

    #[test]
    fn noisy_detections_are_handled_by_robust_regression() {
        let stance = Vec3::new(-0.5, 4.0, 1.0);
        let dir = Vec3::new(-0.3, 0.9, 0.1).normalized().unwrap();
        let rest = stance + Vec3::new(0.15, 0.0, -0.35);
        let ext = stance + Vec3::new(0.0, 0.0, 0.45) + dir * 0.68;
        let mut frames = gesture_recording(rest, ext);
        // Corrupt 15% of stroke detections with multipath spikes.
        for antenna in frames.iter_mut() {
            for i in (96..144).chain(240..288) {
                if i % 7 == 0 {
                    if let Some(d) = antenna[i].detection.as_mut() {
                        d.round_trip_m += 3.0;
                    }
                }
            }
        }
        let est = PointingEstimator::new(PointingConfig::default(), tarray(), DT)
            .estimate(&frames)
            .unwrap();
        let truth = (ext - rest).normalized().unwrap();
        let err = angular_error_deg(est.direction, truth);
        assert!(err < 15.0, "angular error {err}°");
    }

    #[test]
    fn whole_body_bursts_are_rejected() {
        // Same temporal structure but wide (body-like) spectra.
        let t = tarray();
        let arr = t.antenna_array();
        let a = Vec3::new(0.0, 4.0, 1.0);
        let b = Vec3::new(0.5, 5.0, 1.0);
        let frames: Vec<Vec<TofFrame>> = (0..3)
            .map(|k| {
                (0..340)
                    .map(|i| {
                        if (96..144).contains(&i) || (240..288).contains(&i) {
                            let p = a.lerp(b, (i % 48) as f64 / 48.0);
                            frame(i, Some(arr.round_trip(p, k)), true)
                        } else {
                            frame(i, None, false)
                        }
                    })
                    .collect()
            })
            .collect();
        let err = PointingEstimator::new(PointingConfig::default(), tarray(), DT)
            .estimate(&frames)
            .unwrap_err();
        assert_eq!(err, PointingError::NoStrokesFound);
    }

    #[test]
    fn too_short_recording_errors() {
        let frames: Vec<Vec<TofFrame>> = (0..3).map(|_| vec![frame(0, None, false)]).collect();
        let err = PointingEstimator::new(PointingConfig::default(), tarray(), DT)
            .estimate(&frames)
            .unwrap_err();
        assert_eq!(err, PointingError::TooFewFrames);
    }

    #[test]
    fn strokes_without_preceding_stillness_are_skipped() {
        // Continuous activity (no quiet period): nothing qualifies.
        let t = tarray();
        let arr = t.antenna_array();
        let frames: Vec<Vec<TofFrame>> = (0..3)
            .map(|k| {
                (0..340)
                    .map(|i| {
                        let p = Vec3::new(0.0, 4.0 + 0.01 * (i % 50) as f64, 1.0);
                        frame(i, Some(arr.round_trip(p, k)), false)
                    })
                    .collect()
            })
            .collect();
        let err = PointingEstimator::new(PointingConfig::default(), tarray(), DT)
            .estimate(&frames)
            .unwrap_err();
        assert_eq!(err, PointingError::NoStrokesFound);
    }

    #[test]
    fn angular_error_metric() {
        assert!((angular_error_deg(Vec3::X, Vec3::X)).abs() < 1e-9);
        assert!((angular_error_deg(Vec3::X, Vec3::Y) - 90.0).abs() < 1e-9);
        assert!(angular_error_deg(Vec3::ZERO, Vec3::X).is_nan());
    }
}
