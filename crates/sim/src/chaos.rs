//! Declarative chaos scenarios: crowded rooms, non-human movers, RF
//! interference, clock drift, and transport fault schedules — as data.
//!
//! The robustness harness (`t_chaos`, degradation tests) needs many
//! *variations* of one underlying experiment: a hallway watched by a
//! facing sensor pair, stressed along one axis at a time. Encoding each
//! variation imperatively in the harness buries what is actually being
//! tested; a [`ScenarioSpec`] instead names the stressors declaratively
//! and [`ScenarioSpec::build`] assembles the simulator:
//!
//! * **Crowds** — 8–12 independent random walkers break the paper's 1–4
//!   user assumption (§9.4: "up to four users" per device).
//! * **Non-human movers** ([`MoverKind`]) — a pet at knee height, an
//!   oscillating fan, a swinging door: moving reflectors that survive
//!   background subtraction yet are not people (the §10 limitation).
//! * **Inter-sensor interference** — a second WiTrack transmitting in
//!   band raises every receiver's noise floor (the paper's FMCW slopes
//!   are uncoordinated, so cross-chirp energy smears across range bins;
//!   modeled as added white noise of configurable σ).
//! * **Clock drift** — each sensor's reported timestamps run fast or
//!   slow by a rate; fusion must keep pairing epochs anyway.
//! * **Transport faults** ([`FaultScheduleSpec`]) — a plain-data mirror
//!   of the serving layer's fault plan (drop/duplicate/reorder/corrupt/
//!   stall/burst), carried alongside the scenario so one spec describes
//!   the *whole* chaos run. The sim crate deliberately does not depend
//!   on `witrack-serve`; the harness maps this onto its `FaultPlan`.
//!
//! Everything derives deterministically from [`ScenarioSpec::seed`].

use crate::body::BodyModel;
use crate::fleet::RoomSweeps;
use crate::motion::{BodyState, MotionModel, RandomWalk, Rect};
use crate::multi::PersonSpec;
use crate::simulator::SimConfig;
use crate::vantage::{scenario, MultiVantageSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use witrack_fmcw::SweepConfig;
use witrack_geom::{AntennaArray, Vec3};

/// A moving reflector that is not a person.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoverKind {
    /// A cat-sized body wandering at ~0.3 m height: small RCS, real
    /// motion, plausible track bait.
    Pet,
    /// An oscillating fan: a small reflector sweeping side to side at a
    /// fixed station, moving every single frame.
    Fan,
    /// A door swinging open and closed on a hinge every few seconds: a
    /// large flat reflector with intermittent motion.
    Door,
}

impl MoverKind {
    /// Harness-facing label.
    pub fn name(&self) -> &'static str {
        match self {
            MoverKind::Pet => "pet",
            MoverKind::Fan => "fan",
            MoverKind::Door => "door",
        }
    }
}

/// Transport fault probabilities, as data (per frame, `0.0..=1.0`).
///
/// Mirrors the serving layer's fault plan field-for-field without
/// depending on it; `Default` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScheduleSpec {
    /// Fault-sequence seed.
    pub seed: u64,
    /// Frame drop probability.
    pub drop: f64,
    /// Frame duplication probability.
    pub duplicate: f64,
    /// Hold-and-overtake probability.
    pub reorder: f64,
    /// Max frames that may overtake a held frame.
    pub reorder_window: usize,
    /// Payload corruption probability.
    pub corrupt: f64,
    /// Sender stall probability.
    pub stall: f64,
    /// Stall length (ms).
    pub stall_ms: u64,
    /// Withhold-then-flush cycle probability.
    pub burst: f64,
    /// Frames per burst cycle.
    pub burst_len: usize,
}

impl Default for FaultScheduleSpec {
    fn default() -> Self {
        FaultScheduleSpec {
            seed: 1,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: 3,
            corrupt: 0.0,
            stall: 0.0,
            stall_ms: 20,
            burst: 0.0,
            burst_len: 8,
        }
    }
}

/// One named chaos experiment, declaratively.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (benchmark row / report key).
    pub name: String,
    /// Hallway length (m); the facing sensor pair sits at its ends.
    pub hallway_m: f64,
    /// Per-sensor coverage reach (m); `2 × coverage > hallway` overlaps.
    pub coverage_m: f64,
    /// Human walkers (independent seeded random walks).
    pub walkers: usize,
    /// Non-human movers sharing the room.
    pub movers: Vec<MoverKind>,
    /// Added receiver noise σ from a co-channel WiTrack (0 = clean RF).
    pub interference_std: f64,
    /// Per-sensor clock-rate error, seconds of drift per second of true
    /// time (e.g. `50e-6` = 50 ppm fast). Sensors absent here are exact.
    pub clock_drift: Vec<(u32, f64)>,
    /// Scenario length (s).
    pub duration_s: f64,
    /// Master seed: walker paths, mover paths, interference noise.
    pub seed: u64,
    /// Transport fault schedule riding along for the harness.
    pub faults: FaultScheduleSpec,
}

impl ScenarioSpec {
    /// A clean baseline: one walker, 12 m hallway, 8 m coverage, no
    /// stressors.
    pub fn new(name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            hallway_m: 12.0,
            coverage_m: 8.0,
            walkers: 1,
            movers: Vec::new(),
            interference_std: 0.0,
            clock_drift: Vec::new(),
            duration_s: 4.0,
            seed: 1,
            faults: FaultScheduleSpec::default(),
        }
    }

    /// Sets the walker count (8–12 for the dense-crowd scenarios).
    pub fn with_walkers(mut self, n: usize) -> ScenarioSpec {
        self.walkers = n;
        self
    }

    /// Adds one non-human mover.
    pub fn with_mover(mut self, kind: MoverKind) -> ScenarioSpec {
        self.movers.push(kind);
        self
    }

    /// Sets co-channel interference noise σ.
    pub fn with_interference(mut self, std: f64) -> ScenarioSpec {
        self.interference_std = std;
        self
    }

    /// Gives `sensor`'s clock a rate error (s of drift per true s).
    pub fn with_clock_drift(mut self, sensor: u32, rate: f64) -> ScenarioSpec {
        self.clock_drift.push((sensor, rate));
        self
    }

    /// Sets the room geometry.
    pub fn with_room(mut self, hallway_m: f64, coverage_m: f64) -> ScenarioSpec {
        self.hallway_m = hallway_m;
        self.coverage_m = coverage_m;
        self
    }

    /// Sets the scenario duration.
    pub fn with_duration(mut self, seconds: f64) -> ScenarioSpec {
        self.duration_s = seconds;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = seed;
        self
    }

    /// Attaches a transport fault schedule.
    pub fn with_faults(mut self, faults: FaultScheduleSpec) -> ScenarioSpec {
        self.faults = faults;
        self
    }

    /// Assembles the simulator: a facing sensor pair on this hallway,
    /// `walkers` seeded random walks, the movers, and wrappers applying
    /// interference and clock drift to the emitted rounds.
    ///
    /// # Panics
    /// Panics when the spec has no walkers and no movers (an empty room
    /// has nothing to simulate).
    pub fn build(&self, sweep: SweepConfig, noise_std: f64) -> ChaosScenario {
        assert!(
            self.walkers > 0 || !self.movers.is_empty(),
            "scenario {:?} is an empty room",
            self.name
        );
        let mut people = Vec::with_capacity(self.walkers + self.movers.len());
        // Walkers keep a margin off the end walls so every one of them
        // spends time inside at least one sensor's coverage.
        let region = Rect {
            x_min: -1.8,
            x_max: 1.8,
            y_min: 1.5,
            y_max: self.hallway_m - 1.5,
        };
        for w in 0..self.walkers {
            people.push(PersonSpec::adult(RandomWalk::new(
                region,
                1.0,
                1.0,
                self.duration_s,
                0.2,
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(w as u64 + 1),
            )));
        }
        let mid = self.hallway_m / 2.0;
        for (mi, mover) in self.movers.iter().enumerate() {
            let mover_seed = self
                .seed
                .wrapping_mul(0xD134_2543_DE82_EF95)
                .wrapping_add(mi as u64 + 1);
            people.push(match mover {
                MoverKind::Pet => PersonSpec {
                    body: BodyModel::scaled(0.35),
                    motion: Box::new(RandomWalk::new(
                        region,
                        0.3,
                        1.3,
                        self.duration_s,
                        0.4,
                        mover_seed,
                    )),
                },
                MoverKind::Fan => PersonSpec {
                    body: BodyModel::scaled(0.25),
                    motion: Box::new(Oscillate {
                        anchor: Vec3::new(1.6, mid - 1.0, 0.8),
                        amplitude: Vec3::new(0.25, 0.0, 0.0),
                        freq_hz: 0.4,
                        duration: self.duration_s,
                    }),
                },
                MoverKind::Door => PersonSpec {
                    body: BodyModel::scaled(0.8),
                    motion: Box::new(DoorSwing {
                        hinge: Vec3::new(-1.9, mid + 1.5, 1.0),
                        radius: 0.8,
                        swing_s: 1.5,
                        rest_s: 3.0,
                        duration: self.duration_s,
                    }),
                },
            });
        }
        let sim = MultiVantageSimulator::new(
            SimConfig {
                sweep,
                noise_std,
                seed: self.seed,
            },
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            scenario::facing_pair(self.hallway_m, self.coverage_m),
            people,
        );
        ChaosScenario {
            sim,
            humans: self.walkers,
            interference_std: self.interference_std,
            drift: self.clock_drift.iter().copied().collect(),
            rng: StdRng::seed_from_u64(self.seed.wrapping_mul(0xA076_1D64_78BD_642F)),
        }
    }
}

/// A built scenario: the simulator plus the round-level stressors.
pub struct ChaosScenario {
    sim: MultiVantageSimulator,
    humans: usize,
    interference_std: f64,
    drift: HashMap<u32, f64>,
    rng: StdRng,
}

impl ChaosScenario {
    /// The underlying simulator (truth access, coverage queries).
    pub fn sim(&self) -> &MultiVantageSimulator {
        &self.sim
    }

    /// How many of the simulated bodies are humans. Bodies `0..humans()`
    /// are the walkers; anything above is a non-human mover the tracker
    /// is allowed (encouraged) to ignore.
    pub fn humans(&self) -> usize {
        self.humans
    }

    /// Next lockstep round across both sensors, with interference noise
    /// added and per-sensor clock drift applied to the timestamps.
    pub fn next_round(&mut self) -> Option<Vec<RoomSweeps>> {
        let mut round = self.sim.next_round()?;
        for rs in &mut round {
            if self.interference_std > 0.0 {
                for sweep in &mut rs.set.per_rx {
                    for s in sweep.iter_mut() {
                        *s += self.interference_std * crate::gaussian(&mut self.rng);
                    }
                }
            }
            if let Some(rate) = self.drift.get(&rs.sensor_id) {
                // A rate error compounds: the sensor's clock reads
                // (1 + rate) × true time.
                rs.set.time_s *= 1.0 + rate;
            }
        }
        Some(round)
    }
}

/// Sinusoidal station-keeping (the fan): always moving, never travels.
struct Oscillate {
    anchor: Vec3,
    amplitude: Vec3,
    freq_hz: f64,
    duration: f64,
}

impl MotionModel for Oscillate {
    fn state(&self, t: f64) -> BodyState {
        let phase = (2.0 * std::f64::consts::PI * self.freq_hz * t).sin();
        BodyState {
            center: self.anchor + self.amplitude * phase,
            hand: None,
            moving: true,
        }
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

/// A door on a hinge: swings 90° open over `swing_s`, rests, swings
/// shut, rests — the reflector is the door's mid-plane point.
struct DoorSwing {
    hinge: Vec3,
    radius: f64,
    swing_s: f64,
    rest_s: f64,
    duration: f64,
}

impl MotionModel for DoorSwing {
    fn state(&self, t: f64) -> BodyState {
        let cycle = 2.0 * (self.swing_s + self.rest_s);
        let phase = t.rem_euclid(cycle);
        // Angle 0 = shut (flush along +y from the hinge), π/2 = open.
        let (angle, moving) = if phase < self.swing_s {
            ((phase / self.swing_s) * std::f64::consts::FRAC_PI_2, true)
        } else if phase < self.swing_s + self.rest_s {
            (std::f64::consts::FRAC_PI_2, false)
        } else if phase < 2.0 * self.swing_s + self.rest_s {
            let back = (phase - self.swing_s - self.rest_s) / self.swing_s;
            ((1.0 - back) * std::f64::consts::FRAC_PI_2, true)
        } else {
            (0.0, false)
        };
        let center =
            self.hinge + Vec3::new(self.radius * angle.sin(), self.radius * angle.cos(), 0.0);
        BodyState {
            center,
            hand: None,
            moving,
        }
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 100e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        }
    }

    #[test]
    fn a_dense_crowd_builds_and_emits() {
        let spec = ScenarioSpec::new("crowd")
            .with_walkers(10)
            .with_mover(MoverKind::Pet)
            .with_mover(MoverKind::Fan)
            .with_mover(MoverKind::Door)
            .with_duration(0.05);
        let mut built = spec.build(quick_sweep(), 0.02);
        assert_eq!(built.humans(), 10);
        assert_eq!(built.sim().num_people(), 13);
        let round = built.next_round().expect("emits");
        assert_eq!(round.len(), 2, "facing pair");
        assert_eq!(round[0].set.per_rx.len(), 3);
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let spec = ScenarioSpec::new("det")
            .with_walkers(3)
            .with_interference(0.05)
            .with_duration(0.02)
            .with_seed(77);
        let mut a = spec.build(quick_sweep(), 0.02);
        let mut b = spec.clone().build(quick_sweep(), 0.02);
        while let (Some(ra), Some(rb)) = (a.next_round(), b.next_round()) {
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.set.per_rx, y.set.per_rx);
            }
        }
        let mut c = spec.with_seed(78).build(quick_sweep(), 0.02);
        let (ra, rc) = (
            ScenarioSpec::new("det")
                .with_walkers(3)
                .with_interference(0.05)
                .with_duration(0.02)
                .with_seed(77)
                .build(quick_sweep(), 0.02)
                .next_round()
                .unwrap(),
            c.next_round().unwrap(),
        );
        assert_ne!(ra[0].set.per_rx, rc[0].set.per_rx, "seed changes the RF");
    }

    #[test]
    fn interference_raises_the_noise_floor() {
        let clean = ScenarioSpec::new("clean").with_duration(0.01);
        let noisy = clean.clone().with_interference(0.5);
        let ra = clean
            .build(quick_sweep(), 0.02)
            .next_round()
            .expect("clean round");
        let rb = noisy
            .build(quick_sweep(), 0.02)
            .next_round()
            .expect("noisy round");
        // Same seed → identical underlying samples, so the difference is
        // exactly the injected co-channel noise; its mean square should
        // sit near σ² = 0.25.
        let (a, b) = (&ra[0].set.per_rx[0], &rb[0].set.per_rx[0]);
        let n = a.len() as f64;
        let msd = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / n;
        assert!(
            (0.1..0.5).contains(&msd),
            "injected noise power {msd} should be near 0.25"
        );
    }

    #[test]
    fn clock_drift_skews_exactly_the_drifting_sensor() {
        let spec = ScenarioSpec::new("drift")
            .with_duration(0.01)
            .with_clock_drift(1, 0.01); // 1% fast: visible at t > 0
        let mut built = spec.build(quick_sweep(), 0.02);
        built.next_round().expect("round 0"); // t = 0: drift invisible
        let round = built.next_round().expect("round 1");
        let (s0, s1) = (&round[0], &round[1]);
        assert_eq!(s0.sensor_id, 0);
        assert_eq!(s1.sensor_id, 1);
        assert!(
            (s1.set.time_s - s0.set.time_s * 1.01).abs() < 1e-12,
            "sensor 1 runs 1% fast: {} vs {}",
            s1.set.time_s,
            s0.set.time_s
        );
    }

    #[test]
    fn movers_move_like_they_should() {
        let fan = Oscillate {
            anchor: Vec3::new(1.0, 5.0, 0.8),
            amplitude: Vec3::new(0.25, 0.0, 0.0),
            freq_hz: 0.5,
            duration: 10.0,
        };
        let s0 = fan.state(0.0);
        let s1 = fan.state(0.5); // quarter period: max deflection
        assert!(s0.moving && s1.moving, "a fan never stops");
        assert!((s1.center.x - 1.25).abs() < 1e-9);
        assert!((s0.center - fan.anchor).norm() < 1e-9);

        let door = DoorSwing {
            hinge: Vec3::new(0.0, 0.0, 1.0),
            radius: 1.0,
            swing_s: 1.0,
            rest_s: 2.0,
            duration: 20.0,
        };
        let shut = door.state(5.5); // tail of the cycle: shut, resting
        assert!(!shut.moving);
        assert!((shut.center - Vec3::new(0.0, 1.0, 1.0)).norm() < 1e-9);
        let open = door.state(1.5); // mid-rest, fully open
        assert!(!open.moving);
        assert!((open.center - Vec3::new(1.0, 0.0, 1.0)).norm() < 1e-9);
        let swinging = door.state(0.5);
        assert!(swinging.moving, "mid-swing is motion");
        // The door tip stays on the hinge circle throughout.
        assert!(((swinging.center - door.hinge).norm() - 1.0).abs() < 1e-9);
    }
}
