//! Multi-vantage simulation: one room, one set of walkers, observed by
//! several posed sensors at once.
//!
//! [`crate::fleet`] scales out to many *independent* rooms; this module
//! is the opposite experiment — the workload of cross-sensor fusion
//! (`witrack-fuse`): N sensors with **overlapping coverage** watch the
//! *same* bodies, each from its own mounting pose. Every vantage owns a
//! full RF stack (channel, per-antenna front ends, its own specular
//! wander — the specular point is viewpoint-dependent, so two sensors
//! genuinely disagree about where on the torso they see), and each
//! synthesizes baseband in its **local** frame: the walker's world
//! position is carried through the vantage's `sensor ← world` transform
//! before echo generation, exactly inverse to the registration the
//! fusion layer applies on the way back out.
//!
//! Coverage edges are first-class: a vantage with `coverage_m` set stops
//! receiving body echoes beyond that slant range (a wall, a doorway —
//! the §10 occlusion cases), which is what makes handoff scenarios
//! reproducible: the walker *must* leave sensor A's coverage and be
//! reacquired by sensor B.

use crate::body::BodyModel;
use crate::channel::{Channel, PathEcho};
use crate::fleet::RoomSweeps;
use crate::frontend::FrontEnd;
use crate::motion::BodyState;
use crate::multi::PersonSpec;
use crate::scene::Scene;
use crate::simulator::{SimConfig, SweepSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use witrack_geom::{AntennaArray, RigidTransform, Vec3};

/// One sensor's mounting in the shared room.
pub struct VantageSpec {
    /// Wire-level sensor id this vantage emits as.
    pub sensor_id: u32,
    /// The vantage's extrinsic: local sensor frame → world frame. This
    /// is the ground-truth value auto-calibration should recover.
    pub world_from_sensor: RigidTransform,
    /// The static environment *as this sensor sees it*, in its local
    /// frame (walls behind/off-axis differ per mounting).
    pub scene: Scene,
    /// Hard coverage limit (m of slant range from the local origin):
    /// bodies beyond it contribute no echo to this vantage. `None` =
    /// limited only by SNR.
    pub coverage_m: Option<f64>,
}

struct Vantage {
    sensor_id: u32,
    world_from_sensor: RigidTransform,
    sensor_from_world: RigidTransform,
    coverage_m: Option<f64>,
    channel: Channel,
    frontends: Vec<FrontEnd>,
    static_paths: Vec<Vec<PathEcho>>,
    /// Per-person frame wander (redrawn per frame while moving).
    wander: Vec<Vec3>,
    /// Per-person, per-antenna differential wander.
    diff_wander: Vec<Vec<Vec3>>,
    scratch: Vec<PathEcho>,
}

/// N posed sensors observing one shared set of motion scripts.
pub struct MultiVantageSimulator {
    cfg: SimConfig,
    people: Vec<PersonSpec>,
    vantages: Vec<Vantage>,
    wander_rng: StdRng,
    sweep_index: u64,
    total_sweeps: u64,
}

impl MultiVantageSimulator {
    /// Builds the room. Every vantage runs `array` (in its local frame)
    /// and shares the sweep clock; noise and wander derive per vantage
    /// from `cfg.seed`.
    ///
    /// # Panics
    /// Panics when `people` or `vantages` is empty.
    pub fn new(
        cfg: SimConfig,
        array: AntennaArray,
        vantages: Vec<VantageSpec>,
        people: Vec<PersonSpec>,
    ) -> MultiVantageSimulator {
        assert!(!people.is_empty(), "need at least one person");
        assert!(!vantages.is_empty(), "need at least one vantage");
        let n_rx = array.num_rx();
        let n_people = people.len();
        let duration = people
            .iter()
            .map(|p| p.motion.duration())
            .fold(0.0_f64, f64::max);
        let total_sweeps = (duration / cfg.sweep.sweep_duration_s).floor() as u64;
        let vantages = vantages
            .into_iter()
            .enumerate()
            .map(|(vi, spec)| {
                let channel = Channel::new(spec.scene, array.clone(), people[0].body);
                let frontends = (0..n_rx)
                    .map(|k| {
                        FrontEnd::new(
                            cfg.sweep,
                            cfg.noise_std,
                            cfg.seed
                                .wrapping_mul(0x9E37_79B9)
                                .wrapping_add((vi * n_rx + k) as u64 + 1),
                        )
                    })
                    .collect();
                let static_paths = (0..n_rx).map(|k| channel.static_paths(k)).collect();
                Vantage {
                    sensor_id: spec.sensor_id,
                    sensor_from_world: spec.world_from_sensor.inverse(),
                    world_from_sensor: spec.world_from_sensor,
                    coverage_m: spec.coverage_m,
                    channel,
                    frontends,
                    static_paths,
                    wander: vec![Vec3::ZERO; n_people],
                    diff_wander: vec![vec![Vec3::ZERO; n_rx]; n_people],
                    scratch: Vec::new(),
                }
            })
            .collect();
        MultiVantageSimulator {
            wander_rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x517C_C1B7).wrapping_add(3)),
            cfg,
            people,
            vantages,
            sweep_index: 0,
            total_sweeps,
        }
    }

    /// The simulation config.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of vantages (sensors).
    pub fn num_vantages(&self) -> usize {
        self.vantages.len()
    }

    /// Number of people.
    pub fn num_people(&self) -> usize {
        self.people.len()
    }

    /// Total sweeps the experiment will emit per vantage.
    pub fn total_sweeps(&self) -> u64 {
        self.total_sweeps
    }

    /// The ground-truth extrinsic of vantage `v`.
    pub fn world_from_sensor(&self, v: usize) -> &RigidTransform {
        &self.vantages[v].world_from_sensor
    }

    /// True body state of person `i` at time `t`, **world frame**.
    pub fn true_state(&self, i: usize, t: f64) -> BodyState {
        self.people[i].motion.state(t)
    }

    /// Whether person `i` is inside vantage `v`'s coverage at time `t`.
    pub fn in_coverage(&self, v: usize, i: usize, t: f64) -> bool {
        let vantage = &self.vantages[v];
        let local = vantage
            .sensor_from_world
            .apply(self.people[i].motion.state(t).center);
        vantage.coverage_m.is_none_or(|r| local.norm() <= r)
    }

    /// §8(a)-style ground truth for person `i` as vantage `v` sees them:
    /// the mean torso surface point facing that vantage's transmitter,
    /// **world frame** (two vantages legitimately disagree by up to a
    /// torso diameter).
    pub fn surface_truth(&self, v: usize, i: usize, t: f64) -> Vec3 {
        let vantage = &self.vantages[v];
        let state = self.people[i].motion.state(t);
        let local_center = vantage.sensor_from_world.apply(state.center);
        let local_surface = self.people[i]
            .body
            .mean_reflection_point(local_center, vantage.channel.array.tx.position);
        vantage.world_from_sensor.apply(local_surface)
    }

    /// Generates the next sweep for every vantage (same instant, same
    /// bodies, N viewpoints), or `None` when the longest script ended.
    pub fn next_round(&mut self) -> Option<Vec<RoomSweeps>> {
        if self.sweep_index >= self.total_sweeps {
            return None;
        }
        let sweeps_per_frame = self.cfg.sweep.sweeps_per_frame as u64;
        let t = self.sweep_index as f64 * self.cfg.sweep.sweep_duration_s;
        let states: Vec<BodyState> = self.people.iter().map(|p| p.motion.state(t)).collect();

        // Redraw each vantage's specular wander at frame boundaries for
        // moving people (the wander is a property of the viewpoint, so
        // each vantage draws its own).
        if self.sweep_index.is_multiple_of(sweeps_per_frame) {
            for vantage in &mut self.vantages {
                for (pi, state) in states.iter().enumerate() {
                    if !state.moving {
                        continue;
                    }
                    let b = &self.people[pi].body;
                    vantage.wander[pi] = Vec3::new(
                        b.xy_wander_std * crate::gaussian(&mut self.wander_rng),
                        b.xy_wander_std * crate::gaussian(&mut self.wander_rng),
                        b.z_wander_std * crate::gaussian(&mut self.wander_rng),
                    );
                    let d = b.differential_wander_std;
                    for w in &mut vantage.diff_wander[pi] {
                        *w = Vec3::new(
                            d * crate::gaussian(&mut self.wander_rng),
                            d * crate::gaussian(&mut self.wander_rng),
                            d * crate::gaussian(&mut self.wander_rng),
                        );
                    }
                }
            }
        }

        let mut round = Vec::with_capacity(self.vantages.len());
        for vantage in &mut self.vantages {
            let n_rx = vantage.frontends.len();
            let tx = vantage.channel.array.tx.position;
            let mut per_rx = Vec::with_capacity(n_rx);
            for k in 0..n_rx {
                let observer = (tx + vantage.channel.array.rx[k].position) * 0.5;
                vantage.scratch.clear();
                let statics = &vantage.static_paths[k];
                vantage.scratch.extend_from_slice(statics);
                for (pi, state) in states.iter().enumerate() {
                    // World → this vantage's local frame, then the usual
                    // per-person echo synthesis.
                    let local_center = vantage.sensor_from_world.apply(state.center);
                    if let Some(r) = vantage.coverage_m {
                        if local_center.norm() > r {
                            continue; // outside this sensor's coverage
                        }
                    }
                    let body: &BodyModel = &self.people[pi].body;
                    let torso_point = body.reflection_point(
                        local_center,
                        observer,
                        vantage.wander[pi] + vantage.diff_wander[pi][k],
                    );
                    vantage.scratch.extend(vantage.channel.moving_paths(
                        torso_point,
                        body.torso_rcs,
                        k,
                    ));
                    if let Some(hand) = state.hand {
                        let local_hand = vantage.sensor_from_world.apply(hand);
                        vantage.scratch.extend(
                            vantage
                                .channel
                                .moving_paths(local_hand, body.arm_rcs, k)
                                .into_iter()
                                .take(1),
                        );
                    }
                }
                let mut sweep = Vec::new();
                let echoes = std::mem::take(&mut vantage.scratch);
                vantage.frontends[k].synthesize_sweep(&echoes, &mut sweep);
                vantage.scratch = echoes;
                per_rx.push(sweep);
            }
            round.push(RoomSweeps {
                sensor_id: vantage.sensor_id,
                set: SweepSet {
                    sweep_index: self.sweep_index,
                    time_s: t,
                    per_rx,
                },
            });
        }
        self.sweep_index += 1;
        Some(round)
    }
}

/// Scenario builders for the fusion tests, benches, and examples.
pub mod scenario {
    use super::*;
    use crate::motion::LinePath;
    use std::f64::consts::PI;

    /// Two sensors at opposite ends of a `length`-meter hallway, facing
    /// each other, with `coverage` meters of reach each — overlapping in
    /// the middle when `2 × coverage > length`. Sensor 0's frame is the
    /// world frame; sensor 1 hangs at `y = length` yawed 180°.
    pub fn facing_pair(length: f64, coverage: f64) -> Vec<VantageSpec> {
        vec![
            VantageSpec {
                sensor_id: 0,
                world_from_sensor: RigidTransform::IDENTITY,
                scene: Scene::witrack_lab(false),
                coverage_m: Some(coverage),
            },
            VantageSpec {
                sensor_id: 1,
                world_from_sensor: RigidTransform::from_yaw(PI, Vec3::new(0.0, length, 0.0)),
                scene: Scene::witrack_lab(false),
                coverage_m: Some(coverage),
            },
        ]
    }

    /// One walker crossing the whole hallway — through sensor 0's
    /// exclusive region, the shared overlap, and out into sensor 1's —
    /// in `duration` seconds. The identity-across-handoff scenario.
    pub fn hallway_crossing(length: f64, duration: f64) -> Vec<PersonSpec> {
        let from = Vec3::new(0.3, 2.0, 1.05);
        let to = Vec3::new(-0.3, length - 2.0, 1.05);
        vec![PersonSpec::adult(LinePath::new(
            from,
            to,
            from.distance(to) / duration,
        ))]
    }

    /// Two walkers holding station in the overlap region while moving
    /// enough to stay visible (small orbits): both sensors see both
    /// walkers for the whole run — the duplicate-suppression scenario.
    pub fn overlap_pair(length: f64, duration: f64) -> Vec<PersonSpec> {
        let mid = length / 2.0;
        let a_from = Vec3::new(-1.5, mid - 1.2, 1.05);
        let a_to = Vec3::new(1.2, mid - 0.4, 1.05);
        let b_from = Vec3::new(1.5, mid + 1.2, 0.95);
        let b_to = Vec3::new(-1.2, mid + 0.4, 0.95);
        vec![
            PersonSpec::adult(LinePath::new(
                a_from,
                a_to,
                a_from.distance(a_to) / duration,
            )),
            PersonSpec {
                body: BodyModel::small_adult(),
                motion: Box::new(LinePath::new(
                    b_from,
                    b_to,
                    b_from.distance(b_to) / duration,
                )),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::scenario::*;
    use super::*;
    use witrack_fmcw::SweepConfig;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            sweep: SweepConfig {
                start_freq_hz: 5.56e8,
                bandwidth_hz: 1.69e8,
                sweep_duration_s: 1e-3,
                sample_rate_hz: 100e3,
                sweeps_per_frame: 5,
                transmit_power_w: 1e-3,
            },
            noise_std: 0.02,
            seed: 5,
        }
    }

    fn quick_sim(length: f64, coverage: f64, people: Vec<PersonSpec>) -> MultiVantageSimulator {
        MultiVantageSimulator::new(
            quick_cfg(),
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            facing_pair(length, coverage),
            people,
        )
    }

    #[test]
    fn both_vantages_emit_in_lockstep() {
        let mut sim = quick_sim(12.0, 8.0, hallway_crossing(12.0, 0.2));
        assert_eq!(sim.num_vantages(), 2);
        let mut rounds = 0;
        while let Some(round) = sim.next_round() {
            assert_eq!(round.len(), 2);
            assert_eq!(round[0].sensor_id, 0);
            assert_eq!(round[1].sensor_id, 1);
            assert_eq!(round[0].set.per_rx.len(), 3);
            assert_eq!(round[0].set.per_rx[0].len(), 100);
            rounds += 1;
        }
        assert_eq!(rounds, 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = quick_sim(12.0, 8.0, overlap_pair(12.0, 0.2));
        let mut b = quick_sim(12.0, 8.0, overlap_pair(12.0, 0.2));
        while let (Some(ra), Some(rb)) = (a.next_round(), b.next_round()) {
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.set.per_rx, y.set.per_rx);
            }
        }
    }

    #[test]
    fn coverage_gates_who_hears_the_walker() {
        // 12 m hallway, 7 m coverage: at t=0 the walker stands 2 m from
        // sensor 0 and 10 m from sensor 1.
        let sim = quick_sim(12.0, 7.0, hallway_crossing(12.0, 10.0));
        assert!(sim.in_coverage(0, 0, 0.0));
        assert!(!sim.in_coverage(1, 0, 0.0));
        // At the end the roles flip.
        assert!(!sim.in_coverage(0, 0, 10.0));
        assert!(sim.in_coverage(1, 0, 10.0));
        // And mid-hallway both hear them (the overlap).
        assert!(sim.in_coverage(0, 0, 5.0));
        assert!(sim.in_coverage(1, 0, 5.0));
    }

    #[test]
    fn out_of_coverage_bodies_add_no_energy() {
        // Same seeds; walker near sensor 0. Vantage 1 (out of coverage)
        // must emit pure static background — identical to an empty room.
        let cfg = quick_cfg();
        let array = AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
        let person = || hallway_crossing(12.0, 0.05);
        let mut with_walker =
            MultiVantageSimulator::new(cfg, array.clone(), facing_pair(12.0, 5.0), person());
        let round = with_walker.next_round().unwrap();
        // Re-run with coverage so small NO vantage hears the walker.
        let mut without = MultiVantageSimulator::new(cfg, array, facing_pair(12.0, 0.5), person());
        let round_empty = without.next_round().unwrap();
        // Vantage 1 heard nothing either way (walker 10 m away).
        assert_eq!(round[1].set.per_rx, round_empty[1].set.per_rx);
        // Vantage 0 did hear them (coverage 5 m ≥ 2 m walker distance).
        assert_ne!(round[0].set.per_rx, round_empty[0].set.per_rx);
    }

    #[test]
    fn surface_truths_disagree_by_viewpoint() {
        let sim = quick_sim(12.0, 8.0, overlap_pair(12.0, 1.0));
        let s0 = sim.surface_truth(0, 0, 0.5);
        let s1 = sim.surface_truth(1, 0, 0.5);
        let center = sim.true_state(0, 0.5).center;
        // Each surface point sits within a torso radius of the center,
        // pulled toward its own sensor — so they differ.
        assert!(s0.distance(center) < 0.25);
        assert!(s1.distance(center) < 0.25);
        assert!(s0.distance(s1) > 0.1, "{s0} vs {s1}");
        // Sensor 0 sits at low y, sensor 1 at high y.
        assert!(s0.y < center.y && s1.y > center.y);
    }
}
