//! Scene geometry: walls, clutter, and occlusion.
//!
//! The default scene mirrors the paper's evaluation setup (§8–§9): the
//! antenna array at the origin facing +y, a sheetrock wall at y = 2.5 m
//! (removed for line-of-sight runs), the subject moving in a 6 × 5 m area
//! beyond it, side and back walls that generate dynamic multipath, and a few
//! pieces of strongly-reflecting static furniture that produce the §4.2
//! "Flash Effect".

use crate::material::Material;
use serde::Serialize;
use witrack_geom::{Plane, Vec3};

/// A wall: an infinite plane with a material.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Wall {
    /// Geometry of the wall.
    pub plane: Plane,
    /// Loss model of the wall.
    pub material: Material,
}

/// A static point reflector (furniture, equipment racks, …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StaticReflector {
    /// Position of the reflector (m).
    pub position: Vec3,
    /// Radar cross-section (m², relative units).
    pub rcs: f64,
}

/// The simulated environment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scene {
    /// Wall between the array and the subject, if any (through-wall mode).
    /// Signals crossing it are attenuated; it also produces a strong static
    /// flash.
    pub front_wall: Option<Wall>,
    /// Walls that generate specular *dynamic multipath* bounces of the body
    /// echo (§4.3) and their own static flashes.
    pub bounce_walls: Vec<Wall>,
    /// Static point clutter.
    pub clutter: Vec<StaticReflector>,
    /// Extra amplitude factor on the *direct* body path only, modeling an
    /// occluding obstacle between array and subject (1.0 = unobstructed).
    /// Lowering this makes wall bounces dominate the direct echo — the §4.3
    /// scenario where "the strongest signal is not the one directly bouncing
    /// off the human body".
    pub direct_occlusion_amp: f64,
}

impl Scene {
    /// An empty free-space scene (no walls, no clutter).
    pub fn free_space() -> Scene {
        Scene {
            front_wall: None,
            bounce_walls: Vec::new(),
            clutter: Vec::new(),
            direct_occlusion_amp: 1.0,
        }
    }

    /// The paper's lab setup. `through_wall` inserts the sheetrock wall at
    /// y = 2.5 m between the array (at y = 0) and the subject.
    ///
    /// Room footprint: x ∈ [−3, 3.5] m, y ∈ [2.5, 10] m; side and back walls
    /// bounce; two clutter reflectors play the role of furniture.
    pub fn witrack_lab(through_wall: bool) -> Scene {
        let front = Wall {
            plane: Plane::wall_at_y(2.5),
            material: Material::SHEETROCK,
        };
        Scene {
            front_wall: through_wall.then_some(front),
            bounce_walls: vec![
                Wall {
                    plane: Plane::wall_at_x(-3.0),
                    material: Material::SHEETROCK,
                },
                Wall {
                    plane: Plane::wall_at_x(3.5),
                    material: Material::SHEETROCK,
                },
                Wall {
                    plane: Plane::wall_at_y(10.0),
                    material: Material::SHEETROCK,
                },
            ],
            clutter: vec![
                StaticReflector {
                    position: Vec3::new(-2.0, 4.0, 0.8),
                    rcs: 30.0,
                },
                StaticReflector {
                    position: Vec3::new(2.5, 7.0, 1.1),
                    rcs: 50.0,
                },
                StaticReflector {
                    position: Vec3::new(0.5, 9.0, 0.5),
                    rcs: 20.0,
                },
            ],
            direct_occlusion_amp: 1.0,
        }
    }

    /// Returns a copy with an occluder on the direct body path (amplitude
    /// factor < 1).
    pub fn with_occlusion(mut self, amp: f64) -> Scene {
        self.direct_occlusion_amp = amp.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with an extra clutter reflector.
    pub fn with_clutter(mut self, r: StaticReflector) -> Scene {
        self.clutter.push(r);
        self
    }

    /// Amplitude factor for a straight segment `a → b` crossing (or not) the
    /// front wall.
    pub fn crossing_amp(&self, a: Vec3, b: Vec3) -> f64 {
        match &self.front_wall {
            None => 1.0,
            Some(w) => {
                let da = w.plane.signed_distance(a);
                let db = w.plane.signed_distance(b);
                if da * db < 0.0 {
                    w.material.transmission_amp
                } else {
                    1.0
                }
            }
        }
    }

    /// All walls (front + bounce), for static flash computation.
    pub fn all_walls(&self) -> impl Iterator<Item = &Wall> {
        self.front_wall.iter().chain(self.bounce_walls.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_scene_has_expected_structure() {
        let tw = Scene::witrack_lab(true);
        assert!(tw.front_wall.is_some());
        assert_eq!(tw.bounce_walls.len(), 3);
        assert_eq!(tw.clutter.len(), 3);
        assert_eq!(tw.all_walls().count(), 4);
        let los = Scene::witrack_lab(false);
        assert!(los.front_wall.is_none());
        assert_eq!(los.all_walls().count(), 3);
    }

    #[test]
    fn crossing_amp_attenuates_only_through_wall() {
        let s = Scene::witrack_lab(true);
        let array = Vec3::new(0.0, 0.0, 1.0);
        let person = Vec3::new(0.0, 5.0, 1.0);
        let inside = Vec3::new(1.0, 6.0, 1.0);
        // Array → person crosses the y=2.5 wall.
        assert!((s.crossing_amp(array, person) - 0.5).abs() < 1e-12);
        // Person → other point inside the room does not.
        assert_eq!(s.crossing_amp(person, inside), 1.0);
        // Line-of-sight scene never attenuates.
        let los = Scene::witrack_lab(false);
        assert_eq!(los.crossing_amp(array, person), 1.0);
    }

    #[test]
    fn occlusion_clamps() {
        let s = Scene::free_space().with_occlusion(2.0);
        assert_eq!(s.direct_occlusion_amp, 1.0);
        let s = Scene::free_space().with_occlusion(-0.5);
        assert_eq!(s.direct_occlusion_amp, 0.0);
        let s = Scene::free_space().with_occlusion(0.15);
        assert_eq!(s.direct_occlusion_amp, 0.15);
    }

    #[test]
    fn with_clutter_appends() {
        let s = Scene::free_space().with_clutter(StaticReflector {
            position: Vec3::new(1.0, 2.0, 0.5),
            rcs: 5.0,
        });
        assert_eq!(s.clutter.len(), 1);
    }
}
