//! Fleet simulation: K independent rooms, each with its own sensor.
//!
//! The serving layer (`witrack-serve`) multiplexes many sensor deployments
//! on one host; this module generates its workload. A [`FleetSimulator`]
//! runs K rooms, each an independent [`MultiSimulator`] — own walls, own
//! walkers, own noise seeds — and emits every room's sweeps in lockstep
//! (all rooms share the sweep clock, like sensors free-running at the same
//! configured rate). Room `i` is sensor id `i`.
//!
//! Rooms vary deterministically with the fleet seed: walker count cycles
//! 1/2/3 per room by default, walk paths are seeded per room, and every
//! other room is through-wall.

use crate::motion::{RandomWalk, Rect};
use crate::multi::{MultiSimulator, PersonSpec};
use crate::scene::Scene;
use crate::simulator::{SimConfig, SweepSet};
use witrack_geom::{AntennaArray, Vec3};

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of rooms (= sensors). Sensor ids are `0..rooms`.
    pub rooms: usize,
    /// Walkers in room `i`: `1 + (i % max_walkers_per_room)` cycles the
    /// fleet through every population up to this cap.
    pub max_walkers_per_room: usize,
    /// Experiment duration per room (s).
    pub duration_s: f64,
    /// Base simulation parameters (sweep, noise, master seed). Each room
    /// derives its own seed from this one.
    pub sim: SimConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            rooms: 4,
            max_walkers_per_room: 3,
            duration_s: 2.0,
            sim: SimConfig::default(),
        }
    }
}

/// One room's sweeps for the current sweep interval.
#[derive(Debug, Clone)]
pub struct RoomSweeps {
    /// The room's sensor id (its index in the fleet).
    pub sensor_id: u32,
    /// The sweep set (per-antenna baseband + timing).
    pub set: SweepSet,
}

/// K rooms of walkers, emitting per-sensor sweep streams in lockstep.
pub struct FleetSimulator {
    rooms: Vec<MultiSimulator>,
}

impl FleetSimulator {
    /// Builds the fleet. Room `i` gets `1 + (i mod max_walkers_per_room)`
    /// random-walking adults, a seed derived from `cfg.sim.seed` and `i`,
    /// and a through-wall scene on odd `i`.
    ///
    /// # Panics
    /// Panics when `cfg.rooms` is 0.
    pub fn new(cfg: FleetConfig) -> FleetSimulator {
        assert!(cfg.rooms > 0, "a fleet needs at least one room");
        let rooms = (0..cfg.rooms)
            .map(|i| {
                let seed = cfg
                    .sim
                    .seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(i as u64);
                let walkers = 1 + i % cfg.max_walkers_per_room.max(1);
                let people: Vec<PersonSpec> = (0..walkers)
                    .map(|w| {
                        // Stagger heights a little so same-room walkers are
                        // distinguishable bodies, and give each walker its
                        // own path seed.
                        let z = 1.0 + 0.05 * (w as f64 - 1.0);
                        PersonSpec::adult(RandomWalk::new(
                            Rect::vicon_area(),
                            z,
                            1.0,
                            cfg.duration_s,
                            0.1,
                            seed.wrapping_add(1 + w as u64),
                        ))
                    })
                    .collect();
                MultiSimulator::new(
                    SimConfig { seed, ..cfg.sim },
                    Scene::witrack_lab(i % 2 == 1),
                    AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
                    people,
                )
            })
            .collect();
        FleetSimulator { rooms }
    }

    /// Number of rooms in the fleet.
    pub fn num_rooms(&self) -> usize {
        self.rooms.len()
    }

    /// The underlying simulator of room `i` (ground truth, channel).
    pub fn room(&self, i: usize) -> &MultiSimulator {
        &self.rooms[i]
    }

    /// Advances every room by one sweep interval. Returns `None` once all
    /// rooms' scripts have ended; rooms that end earlier than the longest
    /// one simply stop appearing (their sensor went quiet).
    pub fn next_round(&mut self) -> Option<Vec<RoomSweeps>> {
        let round: Vec<RoomSweeps> = self
            .rooms
            .iter_mut()
            .enumerate()
            .filter_map(|(i, room)| {
                room.next_sweeps().map(|set| RoomSweeps {
                    sensor_id: i as u32,
                    set,
                })
            })
            .collect();
        if round.is_empty() {
            None
        } else {
            Some(round)
        }
    }

    /// Records each room's full stream up front: `result[room][sweep]` is
    /// that room's per-antenna baseband. Useful for benches that must
    /// exclude synthesis cost from what they time.
    pub fn record_all(mut self) -> Vec<Vec<Vec<Vec<f64>>>> {
        let mut out: Vec<Vec<Vec<Vec<f64>>>> = (0..self.rooms.len()).map(|_| Vec::new()).collect();
        while let Some(round) = self.next_round() {
            for rs in round {
                out[rs.sensor_id as usize].push(rs.set.per_rx);
            }
        }
        out
    }

    /// [`Self::record_all`], but packed the way the serving wire carries
    /// it: `result[room][frame]` is one flat sweep-major buffer of
    /// `sweeps_per_frame × n_rx × samples_per_sweep` f64s (sweep `s`,
    /// antenna `k` at `[(s·n_rx + k)·samples ..][..samples]`). Benches
    /// and clients batch-encode these directly — one buffer per wire
    /// frame, no nested-`Vec` assembly. Trailing sweeps that do not fill
    /// a whole frame are dropped.
    pub fn record_frames_flat(mut self, sweeps_per_frame: usize) -> Vec<Vec<Vec<f64>>> {
        assert!(sweeps_per_frame > 0, "frames need at least one sweep");
        let mut out: Vec<Vec<Vec<f64>>> = (0..self.rooms.len()).map(|_| Vec::new()).collect();
        let mut pending: Vec<(Vec<f64>, usize)> = (0..self.rooms.len())
            .map(|_| (Vec::new(), 0usize))
            .collect();
        while let Some(round) = self.next_round() {
            for rs in round {
                let (buf, sweeps) = &mut pending[rs.sensor_id as usize];
                for rx in &rs.set.per_rx {
                    buf.extend_from_slice(rx);
                }
                *sweeps += 1;
                if *sweeps == sweeps_per_frame {
                    out[rs.sensor_id as usize].push(std::mem::take(buf));
                    *sweeps = 0;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witrack_fmcw::SweepConfig;

    fn quick_fleet(rooms: usize) -> FleetConfig {
        FleetConfig {
            rooms,
            max_walkers_per_room: 3,
            duration_s: 0.1,
            sim: SimConfig {
                sweep: SweepConfig {
                    start_freq_hz: 5.56e8,
                    bandwidth_hz: 1.69e8,
                    sweep_duration_s: 1e-3,
                    sample_rate_hz: 100e3,
                    sweeps_per_frame: 5,
                    transmit_power_w: 1e-3,
                },
                noise_std: 0.02,
                seed: 11,
            },
        }
    }

    #[test]
    fn every_room_emits_in_lockstep() {
        let mut fleet = FleetSimulator::new(quick_fleet(4));
        assert_eq!(fleet.num_rooms(), 4);
        assert_eq!(fleet.room(0).num_people(), 1);
        assert_eq!(fleet.room(2).num_people(), 3);
        let mut rounds = 0;
        while let Some(round) = fleet.next_round() {
            assert_eq!(round.len(), 4, "equal-duration rooms stay in lockstep");
            for rs in &round {
                assert_eq!(rs.set.per_rx.len(), 3);
                assert_eq!(rs.set.per_rx[0].len(), 100);
            }
            rounds += 1;
        }
        assert_eq!(rounds, 100, "0.1 s at 1 ms sweeps");
    }

    #[test]
    fn flat_frames_match_the_nested_recording() {
        let sweeps = FleetSimulator::new(quick_fleet(2)).record_all();
        let frames = FleetSimulator::new(quick_fleet(2)).record_frames_flat(5);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].len(), 20, "100 sweeps = 20 five-sweep frames");
        // Frame 3 of room 1, sweep 2, antenna 1 lines up with the nested
        // recording at sweep 17.
        let samples = sweeps[1][0][0].len();
        let flat = &frames[1][3];
        assert_eq!(flat.len(), 5 * 3 * samples);
        let at = (2 * 3 + 1) * samples;
        assert_eq!(&flat[at..at + samples], &sweeps[1][17][1][..]);
    }

    #[test]
    fn rooms_differ_but_are_deterministic() {
        let a = FleetSimulator::new(quick_fleet(2)).record_all();
        let b = FleetSimulator::new(quick_fleet(2)).record_all();
        assert_eq!(a, b, "same seed, same fleet");
        assert_ne!(a[0], a[1], "different rooms see different signals");
    }
}
