//! RF propagation and FMCW front-end simulator for the WiTrack reproduction.
//!
//! The paper's testbed is hardware we cannot run: an analog FMCW front end
//! (VCO + PLL + mixer) feeding a USRP, a real through-wall environment, and
//! a VICON motion-capture rig for ground truth. This crate substitutes all
//! three (see DESIGN.md §2) while preserving the phenomena the WiTrack
//! pipeline exists to handle:
//!
//! * the **Flash Effect** — static walls/furniture reflect far more power
//!   than the body (§4.2),
//! * **dynamic multipath** — body echoes that bounce off side walls arrive
//!   later but can be *stronger* than an occluded direct path (§4.3),
//! * **through-wall attenuation** and SNR loss with distance (§9.1–9.2),
//! * **specular-point wander** over the torso, which is why the paper's
//!   z-accuracy is ~2× worse than x/y (§9.1),
//! * quasi-static motion over one 12.5 ms frame, sub-bin carrier-phase
//!   rotation between frames (what makes background subtraction work).
//!
//! Layers, bottom-up: [`material`]/[`scene`] (geometry + losses), [`body`]
//! (reflector model), [`motion`] (trajectories, activities, gestures),
//! [`channel`] (echo paths per antenna), [`frontend`] (baseband synthesis,
//! including a full chirp-mixing validation path), and [`simulator`] (the
//! experiment driver that also records VICON-style ground truth).
//! [`fleet`] scales the whole stack out: K independent rooms emitting
//! per-sensor sweep streams in lockstep, the workload of the
//! `witrack-serve` engine. [`vantage`] is the converse: one room's
//! walkers observed by several posed sensors with overlapping coverage,
//! the workload of cross-sensor fusion (`witrack-fuse`). [`chaos`] builds
//! adversarial variants of those rooms declaratively: dense crowds,
//! non-human movers, co-channel interference, clock drift, and transport
//! fault schedules, for the degradation harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod body;
pub mod channel;
pub mod chaos;
pub mod fleet;
pub mod frontend;
pub mod material;
pub mod motion;
pub mod multi;
pub mod scene;
pub mod simulator;
pub mod vantage;

pub use body::BodyModel;
pub use channel::{Channel, PathEcho};
pub use chaos::{ChaosScenario, FaultScheduleSpec, MoverKind, ScenarioSpec};
pub use fleet::{FleetConfig, FleetSimulator, RoomSweeps};
pub use frontend::FrontEnd;
pub use material::Material;
pub use motion::{BodyState, MotionModel};
pub use multi::{scenario, MultiSimulator, PersonSpec};
pub use scene::{Scene, StaticReflector, Wall};
pub use simulator::{SimConfig, Simulator, SweepSet};
pub use vantage::{MultiVantageSimulator, VantageSpec};

use rand::Rng;

/// Standard normal sample via Box–Muller (the approved crate list has `rand`
/// but not `rand_distr`).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_standard() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(gaussian(&mut a), gaussian(&mut b));
        }
    }
}
