//! The software FMCW front end.
//!
//! Replaces the paper's analog chain (VCO + PLL sweep generation, mixer,
//! USRP LFRX-LF at 1 MS/s — §7, Fig. 7). After dechirping, a reflector with
//! round-trip delay τ contributes a baseband tone
//!
//! ```text
//! a · cos(2π·(slope·τ)·t + 2π·f₀·τ − π·slope·τ²)
//! ```
//!
//! [`FrontEnd::synthesize_sweep`] generates exactly that (plus AWGN) with a
//! rotating-phasor recurrence (no per-sample trig). The carrier-phase term
//! `2π·f₀·τ` is what makes *moving* reflectors survive background
//! subtraction: a 1 cm change in round trip rotates the tone's phase by
//! ≈ 1.3 rad at 5.56 GHz.
//!
//! [`full_synthesis_sweep`] is the validation path: it simulates the actual
//! physics — oversampled chirp, delayed echoes, mixing, low-pass filtering,
//! decimation — and is compared against the dechirped shortcut in tests,
//! demonstrating the shortcut is the same signal the hardware would deliver.

use crate::channel::PathEcho;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;
use witrack_fmcw::config::{SweepConfig, SPEED_OF_LIGHT};

/// Streaming baseband synthesizer for one experiment.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    cfg: SweepConfig,
    noise_std: f64,
    rng: StdRng,
}

impl FrontEnd {
    /// Creates a front end with per-sample AWGN of std-dev `noise_std`,
    /// deterministic in `seed`.
    pub fn new(cfg: SweepConfig, noise_std: f64, seed: u64) -> FrontEnd {
        FrontEnd {
            cfg,
            noise_std,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The sweep configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// Synthesizes one dechirped sweep from echo paths given as round-trip
    /// *distances*, writing into `out` (resized to one sweep).
    pub fn synthesize_sweep(&mut self, echoes: &[PathEcho], out: &mut Vec<f64>) {
        let taus: Vec<(f64, f64)> = echoes
            .iter()
            .map(|e| (e.round_trip_m / SPEED_OF_LIGHT, e.amplitude))
            .collect();
        self.synthesize_sweep_tau(&taus, out);
    }

    /// Synthesizes one dechirped sweep from `(delay τ, amplitude)` pairs.
    pub fn synthesize_sweep_tau(&mut self, echoes: &[(f64, f64)], out: &mut Vec<f64>) {
        let n = self.cfg.samples_per_sweep();
        out.clear();
        out.resize(n, 0.0);
        let slope = self.cfg.slope();
        let dt = 1.0 / self.cfg.sample_rate_hz;
        for &(tau, amp) in echoes {
            if amp == 0.0 {
                continue;
            }
            let beat = slope * tau;
            let phase0 = 2.0 * PI * self.cfg.start_freq_hz * tau - PI * slope * tau * tau;
            // Rotating phasor: cos(phase0 + 2π·beat·k·dt) = Re(z_k),
            // z_{k+1} = z_k · e^{i·2π·beat·dt}.
            let step = 2.0 * PI * beat * dt;
            let (ss, cs) = step.sin_cos();
            let (s0, c0) = phase0.sin_cos();
            let mut zr = c0;
            let mut zi = s0;
            for o in out.iter_mut() {
                *o += amp * zr;
                let nr = zr * cs - zi * ss;
                let ni = zr * ss + zi * cs;
                zr = nr;
                zi = ni;
            }
        }
        if self.noise_std > 0.0 {
            for o in out.iter_mut() {
                *o += self.noise_std * crate::gaussian(&mut self.rng);
            }
        }
    }
}

/// Physics-level synthesis of one dechirped sweep: generate the transmitted
/// chirp at `oversample × sample_rate`, delay/sum the echoes, mix with the
/// chirp, low-pass filter, and decimate back to `sample_rate`.
///
/// The oversampled rate must satisfy Nyquist for the chirp itself
/// (`oversample · sample_rate > 2 · (start + bandwidth)`), so this is only
/// practical for *scaled-down* configs — which is exactly its job: proving
/// on a scaled config that the [`FrontEnd`] shortcut equals the mixer
/// output. Noise-free by construction.
///
/// # Panics
/// Panics if the oversampled rate violates the chirp's Nyquist rate.
pub fn full_synthesis_sweep(
    cfg: &SweepConfig,
    echoes_tau: &[(f64, f64)],
    oversample: usize,
) -> Vec<f64> {
    let fs_hi = cfg.sample_rate_hz * oversample as f64;
    assert!(
        fs_hi > 2.0 * cfg.end_freq_hz(),
        "oversampled rate {fs_hi} below chirp Nyquist {}",
        2.0 * cfg.end_freq_hz()
    );
    let n_hi = cfg.samples_per_sweep() * oversample;
    let slope = cfg.slope();
    let chirp_phase = |t: f64| 2.0 * PI * (cfg.start_freq_hz * t + 0.5 * slope * t * t);

    // Transmitted chirp and sum of delayed echoes.
    let mut mixed = vec![0.0; n_hi];
    for (i, m) in mixed.iter_mut().enumerate() {
        let t = i as f64 / fs_hi;
        let tx = chirp_phase(t).cos();
        let mut rx = 0.0;
        for &(tau, amp) in echoes_tau {
            let td = t - tau;
            if td >= 0.0 {
                rx += amp * chirp_phase(td).cos();
            }
        }
        // Mixer: product of TX and RX.
        *m = tx * rx;
    }

    // Low-pass FIR (windowed sinc) at 40% of the output Nyquist, then
    // decimate. Gain 2 compensates the mixer's ½ factor on the difference
    // term so amplitudes match the dechirped model.
    let cutoff = 0.4 * cfg.sample_rate_hz / 2.0;
    let taps = design_lowpass(cutoff, fs_hi, 4 * oversample + 1);
    let n_out = cfg.samples_per_sweep();
    let mut out = vec![0.0; n_out];
    for (k, o) in out.iter_mut().enumerate() {
        let center = k * oversample;
        let mut acc = 0.0;
        for (j, &h) in taps.iter().enumerate() {
            let idx = center as isize + j as isize - (taps.len() / 2) as isize;
            if idx >= 0 && (idx as usize) < n_hi {
                acc += h * mixed[idx as usize];
            }
        }
        *o = 2.0 * acc;
    }
    out
}

/// Windowed-sinc low-pass FIR design (Hann window), unity DC gain.
fn design_lowpass(cutoff_hz: f64, fs: f64, taps: usize) -> Vec<f64> {
    let taps = if taps.is_multiple_of(2) {
        taps + 1
    } else {
        taps
    };
    let fc = cutoff_hz / fs;
    let mid = (taps / 2) as isize;
    let mut h: Vec<f64> = (0..taps as isize)
        .map(|i| {
            let k = (i - mid) as f64;
            let sinc = if k == 0.0 {
                2.0 * fc
            } else {
                (2.0 * PI * fc * k).sin() / (PI * k)
            };
            let w = 0.5 * (1.0 - (2.0 * PI * i as f64 / (taps - 1) as f64).cos());
            sinc * w
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use witrack_dsp::Fft;

    fn small_cfg() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 30e3,
            bandwidth_hz: 20e3,
            sweep_duration_s: 10e-3,
            sample_rate_hz: 40e3,
            sweeps_per_frame: 1,
            transmit_power_w: 1e-3,
        }
    }

    fn spectrum_peak(signal: &[f64]) -> (usize, f64) {
        let n = signal.len();
        let spec = Fft::new(n).forward_real(signal);
        spec[..n / 2]
            .iter()
            .map(|z| z.abs())
            .enumerate()
            .fold((0, 0.0), |acc, (i, m)| if m > acc.1 { (i, m) } else { acc })
    }

    #[test]
    fn dechirped_tone_lands_at_slope_times_tau() {
        let cfg = small_cfg();
        let mut fe = FrontEnd::new(cfg, 0.0, 1);
        // τ = 3 ms → beat = slope·τ = 2e6·3e-3 = 6 kHz → bin 60 (spacing 100 Hz).
        let tau = 3e-3;
        let mut sweep = Vec::new();
        fe.synthesize_sweep_tau(&[(tau, 1.0)], &mut sweep);
        let (bin, _) = spectrum_peak(&sweep);
        let expected = cfg.beat_for_tof(tau) / cfg.bin_spacing_hz();
        assert_eq!(bin as f64, expected.round());
    }

    #[test]
    fn carrier_phase_rotates_with_delay() {
        // Two sweeps with τ differing by half a carrier cycle must be in
        // antiphase — the effect background subtraction relies on.
        let cfg = small_cfg();
        let mut fe = FrontEnd::new(cfg, 0.0, 1);
        let tau = 2e-3;
        // The tone's phase sensitivity to delay is d(2πf₀τ − πγτ²)/dτ =
        // 2π(f₀ − γτ); pick the delay step that flips it by exactly π.
        let dtau = 0.5 / (cfg.start_freq_hz - cfg.slope() * tau);
        let mut a = Vec::new();
        let mut b = Vec::new();
        fe.synthesize_sweep_tau(&[(tau, 1.0)], &mut a);
        fe.synthesize_sweep_tau(&[(tau + dtau, 1.0)], &mut b);
        // The delay change also shifts the beat frequency slightly, so exact
        // antiphase only holds before that drift accumulates: compare the
        // first twentieth of the sweep.
        let n = a.len() / 20;
        let energy_a: f64 = a[..n].iter().map(|x| x * x).sum();
        let energy_sum: f64 = a[..n]
            .iter()
            .zip(&b[..n])
            .map(|(x, y)| (x + y) * (x + y))
            .sum();
        assert!(
            energy_sum < 0.05 * energy_a,
            "sum {energy_sum} vs {energy_a}"
        );
    }

    #[test]
    fn rotating_phasor_matches_direct_trig() {
        let cfg = small_cfg();
        let mut fe = FrontEnd::new(cfg, 0.0, 1);
        let tau = 1.7e-3;
        let amp = 0.8;
        let mut fast = Vec::new();
        fe.synthesize_sweep_tau(&[(tau, amp)], &mut fast);
        let slope = cfg.slope();
        let beat = slope * tau;
        let phase0 = 2.0 * PI * cfg.start_freq_hz * tau - PI * slope * tau * tau;
        for (i, &v) in fast.iter().enumerate() {
            let t = i as f64 / cfg.sample_rate_hz;
            let direct = amp * (2.0 * PI * beat * t + phase0).cos();
            assert!((v - direct).abs() < 1e-9, "sample {i}: {v} vs {direct}");
        }
    }

    #[test]
    fn noise_is_deterministic_and_scaled() {
        let cfg = small_cfg();
        let mut a = FrontEnd::new(cfg, 0.3, 77);
        let mut b = FrontEnd::new(cfg, 0.3, 77);
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a.synthesize_sweep_tau(&[], &mut sa);
        b.synthesize_sweep_tau(&[], &mut sb);
        assert_eq!(sa, sb);
        let var = sa.iter().map(|x| x * x).sum::<f64>() / sa.len() as f64;
        assert!((var.sqrt() - 0.3).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn full_synthesis_validates_the_dechirp_shortcut() {
        // The headline substrate validation: physical chirp + mixer + LPF +
        // decimation must produce the same dominant tone (same bin, similar
        // magnitude) as the dechirped shortcut.
        let cfg = small_cfg();
        let tau = 2.5e-3;
        let amp = 1.0;
        let mut fe = FrontEnd::new(cfg, 0.0, 1);
        let mut shortcut = Vec::new();
        fe.synthesize_sweep_tau(&[(tau, amp)], &mut shortcut);
        let physical = full_synthesis_sweep(&cfg, &[(tau, amp)], 4);
        let (bin_s, mag_s) = spectrum_peak(&shortcut);
        let (bin_p, mag_p) = spectrum_peak(&physical);
        assert_eq!(bin_s, bin_p, "peak bins differ");
        let ratio = mag_p / mag_s;
        assert!((0.6..=1.4).contains(&ratio), "magnitude ratio {ratio}");
    }

    #[test]
    fn full_synthesis_handles_multiple_echoes() {
        let cfg = small_cfg();
        let echoes = [(1.5e-3, 1.0), (3.5e-3, 0.5)];
        let physical = full_synthesis_sweep(&cfg, &echoes, 4);
        let n = physical.len();
        let spec = Fft::new(n).forward_real(&physical);
        let mags: Vec<f64> = spec[..n / 2].iter().map(|z| z.abs()).collect();
        let bin1 = (cfg.beat_for_tof(1.5e-3) / cfg.bin_spacing_hz()).round() as usize;
        let bin2 = (cfg.beat_for_tof(3.5e-3) / cfg.bin_spacing_hz()).round() as usize;
        let floor = witrack_dsp::stats::median(&mags);
        assert!(mags[bin1] > 20.0 * floor);
        assert!(mags[bin2] > 10.0 * floor);
        assert!(mags[bin1] > mags[bin2]);
    }

    #[test]
    #[should_panic]
    fn full_synthesis_rejects_sub_nyquist_oversampling() {
        let cfg = small_cfg();
        // oversample 2 → 80 kHz < 2·50 kHz.
        let _ = full_synthesis_sweep(&cfg, &[(1e-3, 1.0)], 2);
    }

    #[test]
    fn lowpass_has_unit_dc_gain() {
        let h = design_lowpass(5e3, 100e3, 33);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h.len(), 33);
        // Symmetric (linear phase).
        for i in 0..h.len() {
            assert!((h[i] - h[h.len() - 1 - i]).abs() < 1e-12);
        }
    }
}
