//! Multi-person simulation: N moving bodies in one scene.
//!
//! The single-person [`Simulator`](crate::Simulator) mirrors the paper's
//! evaluation protocol (one subject, §8). This module drives the same
//! channel and front end with **several** bodies at once — the §10 scenario
//! the paper leaves open and the `witrack-mtt` subsystem exists to solve.
//! Every body contributes its direct echo and its dynamic-multipath
//! bounces to every receive antenna; static paths are shared.
//!
//! [`scenario`] holds the scripted walker layouts (two crossing walkers,
//! a radial pass, three walkers) used by the examples, benches, and
//! integration tests.

use crate::body::BodyModel;
use crate::channel::{Channel, PathEcho};
use crate::frontend::FrontEnd;
use crate::motion::{BodyState, MotionModel};
use crate::scene::Scene;
use crate::simulator::{SimConfig, SweepSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use witrack_geom::{AntennaArray, Vec3};

/// One simulated person: a reflector model plus a motion script.
pub struct PersonSpec {
    /// Reflector geometry/RCS of this person.
    pub body: BodyModel,
    /// Their trajectory.
    pub motion: Box<dyn MotionModel>,
}

impl PersonSpec {
    /// An adult following `motion`.
    pub fn adult(motion: impl MotionModel + 'static) -> PersonSpec {
        PersonSpec {
            body: BodyModel::adult(),
            motion: Box::new(motion),
        }
    }
}

/// Per-person wander state (see `Simulator` for the single-person
/// rationale: wander redraws once per frame, only while moving).
struct PersonState {
    spec: PersonSpec,
    wander: Vec3,
    diff_wander: Vec<Vec3>,
}

/// Plays several motion scripts through one RF channel, emitting the
/// combined baseband sweeps.
pub struct MultiSimulator {
    cfg: SimConfig,
    channel: Channel,
    people: Vec<PersonState>,
    frontends: Vec<FrontEnd>,
    static_paths: Vec<Vec<PathEcho>>,
    wander_rng: StdRng,
    sweep_index: u64,
    total_sweeps: u64,
    scratch: Vec<PathEcho>,
}

impl MultiSimulator {
    /// Creates a multi-person simulator. The experiment runs for the
    /// longest of the people's scripted durations; people whose script has
    /// ended stand still (and, being static, fade from the
    /// background-subtracted stream — the §10 behavior).
    ///
    /// # Panics
    /// Panics when `people` is empty.
    pub fn new(
        cfg: SimConfig,
        scene: Scene,
        array: AntennaArray,
        people: Vec<PersonSpec>,
    ) -> MultiSimulator {
        assert!(!people.is_empty(), "need at least one person");
        let n_rx = array.num_rx();
        // The channel's own body model is only consulted via explicit
        // per-person calls here; hand it the first person's.
        let channel = Channel::new(scene, array, people[0].body);
        let frontends = (0..n_rx)
            .map(|k| {
                FrontEnd::new(
                    cfg.sweep,
                    cfg.noise_std,
                    cfg.seed.wrapping_add(k as u64 + 1),
                )
            })
            .collect();
        let static_paths = (0..n_rx).map(|k| channel.static_paths(k)).collect();
        let duration = people
            .iter()
            .map(|p| p.motion.duration())
            .fold(0.0_f64, f64::max);
        let total_sweeps = (duration / cfg.sweep.sweep_duration_s).floor() as u64;
        MultiSimulator {
            people: people
                .into_iter()
                .map(|spec| PersonState {
                    spec,
                    wander: Vec3::ZERO,
                    diff_wander: vec![Vec3::ZERO; n_rx],
                })
                .collect(),
            cfg,
            channel,
            frontends,
            static_paths,
            wander_rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17)),
            sweep_index: 0,
            total_sweeps,
            scratch: Vec::new(),
        }
    }

    /// The simulation config.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The shared channel (scene/array).
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Number of simulated people.
    pub fn num_people(&self) -> usize {
        self.people.len()
    }

    /// Total sweeps this experiment will emit.
    pub fn total_sweeps(&self) -> u64 {
        self.total_sweeps
    }

    /// Experiment duration (s).
    pub fn duration(&self) -> f64 {
        self.total_sweeps as f64 * self.cfg.sweep.sweep_duration_s
    }

    /// True body state of person `i` at time `t`.
    pub fn true_state(&self, i: usize, t: f64) -> BodyState {
        self.people[i].spec.motion.state(t)
    }

    /// §8(a)-compensated ground truth for person `i`: the mean torso
    /// surface point facing the array.
    pub fn surface_truth(&self, i: usize, t: f64) -> Vec3 {
        let state = self.people[i].spec.motion.state(t);
        self.people[i]
            .spec
            .body
            .mean_reflection_point(state.center, self.channel.array.tx.position)
    }

    /// Generates the next sweep for every antenna, or `None` when the
    /// longest script has ended.
    pub fn next_sweeps(&mut self) -> Option<SweepSet> {
        if self.sweep_index >= self.total_sweeps {
            return None;
        }
        let sweeps_per_frame = self.cfg.sweep.sweeps_per_frame as u64;
        let t = self.sweep_index as f64 * self.cfg.sweep.sweep_duration_s;
        let n_rx = self.frontends.len();
        let states: Vec<BodyState> = self.people.iter().map(|p| p.spec.motion.state(t)).collect();

        // Redraw each moving person's specular wander at frame boundaries
        // (same policy as the single-person simulator).
        if self.sweep_index.is_multiple_of(sweeps_per_frame) {
            for (person, state) in self.people.iter_mut().zip(&states) {
                if !state.moving {
                    continue;
                }
                let b = &person.spec.body;
                person.wander = Vec3::new(
                    b.xy_wander_std * crate::gaussian(&mut self.wander_rng),
                    b.xy_wander_std * crate::gaussian(&mut self.wander_rng),
                    b.z_wander_std * crate::gaussian(&mut self.wander_rng),
                );
                let d = b.differential_wander_std;
                for w in &mut person.diff_wander {
                    *w = Vec3::new(
                        d * crate::gaussian(&mut self.wander_rng),
                        d * crate::gaussian(&mut self.wander_rng),
                        d * crate::gaussian(&mut self.wander_rng),
                    );
                }
            }
        }

        let tx = self.channel.array.tx.position;
        let mut per_rx = Vec::with_capacity(n_rx);
        for k in 0..n_rx {
            let observer = (tx + self.channel.array.rx[k].position) * 0.5;
            self.scratch.clear();
            self.scratch.extend_from_slice(&self.static_paths[k]);
            for (person, state) in self.people.iter().zip(&states) {
                let torso_point = person.spec.body.reflection_point(
                    state.center,
                    observer,
                    person.wander + person.diff_wander[k],
                );
                self.scratch.extend(self.channel.moving_paths(
                    torso_point,
                    person.spec.body.torso_rcs,
                    k,
                ));
                if let Some(hand) = state.hand {
                    self.scratch.extend(
                        self.channel
                            .moving_paths(hand, person.spec.body.arm_rcs, k)
                            .into_iter()
                            .take(1),
                    );
                }
            }
            let mut sweep = Vec::new();
            self.frontends[k].synthesize_sweep(&self.scratch, &mut sweep);
            per_rx.push(sweep);
        }
        let set = SweepSet {
            sweep_index: self.sweep_index,
            time_s: t,
            per_rx,
        };
        self.sweep_index += 1;
        Some(set)
    }
}

/// Scripted multi-walker layouts shared by examples, benches, and tests.
pub mod scenario {
    use super::PersonSpec;
    use crate::body::BodyModel;
    use crate::motion::LinePath;
    use witrack_geom::Vec3;

    /// Two walkers whose floor paths cross mid-room while staying radially
    /// separated (their round trips never merge): the "identity must not
    /// swap" scenario. Both walk for `duration` seconds.
    pub fn two_walker_crossing(duration: f64) -> Vec<PersonSpec> {
        // Speeds chosen so each path takes `duration`: ~4.5 m of travel.
        let a_from = Vec3::new(-2.0, 4.2, 1.05);
        let a_to = Vec3::new(2.0, 6.2, 1.05);
        let b_from = Vec3::new(2.0, 5.4, 0.95);
        let b_to = Vec3::new(-2.0, 7.4, 0.95);
        vec![
            PersonSpec::adult(LinePath::new(
                a_from,
                a_to,
                a_from.distance(a_to) / duration,
            )),
            PersonSpec {
                body: BodyModel::small_adult(),
                motion: Box::new(LinePath::new(
                    b_from,
                    b_to,
                    b_from.distance(b_to) / duration,
                )),
            },
        ]
    }

    /// Two walkers that pass each other *radially*: their round trips cross
    /// mid-experiment, so the per-antenna contours briefly merge and the
    /// tracker must coast one target through the merge.
    pub fn two_walker_radial_pass(duration: f64) -> Vec<PersonSpec> {
        let a_from = Vec3::new(-1.5, 4.0, 1.05);
        let a_to = Vec3::new(-1.5, 8.0, 1.05);
        let b_from = Vec3::new(1.5, 8.0, 0.95);
        let b_to = Vec3::new(1.5, 4.0, 0.95);
        vec![
            PersonSpec::adult(LinePath::new(
                a_from,
                a_to,
                a_from.distance(a_to) / duration,
            )),
            PersonSpec::adult(LinePath::new(
                b_from,
                b_to,
                b_from.distance(b_to) / duration,
            )),
        ]
    }

    /// Three walkers at staggered depths, all moving for `duration`
    /// seconds — the capacity scenario for `max_targets = 3`.
    pub fn three_walkers(duration: f64) -> Vec<PersonSpec> {
        let paths = [
            (Vec3::new(-2.0, 3.5, 1.05), Vec3::new(1.5, 4.5, 1.05)),
            (Vec3::new(2.0, 6.0, 1.0), Vec3::new(-1.5, 6.8, 1.0)),
            (Vec3::new(0.0, 8.5, 0.95), Vec3::new(0.5, 9.5, 0.95)),
        ];
        paths
            .into_iter()
            .map(|(from, to)| {
                PersonSpec::adult(LinePath::new(from, to, from.distance(to) / duration))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::scenario;
    use super::*;
    use crate::motion::{LinePath, Stand};
    use witrack_fmcw::SweepConfig;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            sweep: SweepConfig {
                start_freq_hz: 5.56e8,
                bandwidth_hz: 1.69e8,
                sweep_duration_s: 1e-3,
                sample_rate_hz: 100e3,
                sweeps_per_frame: 5,
                transmit_power_w: 1e-3,
            },
            noise_std: 0.02,
            seed: 3,
        }
    }

    fn quick_sim(people: Vec<PersonSpec>) -> MultiSimulator {
        MultiSimulator::new(
            quick_cfg(),
            Scene::witrack_lab(false),
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            people,
        )
    }

    #[test]
    fn emits_combined_sweeps_with_correct_shapes() {
        let mut sim = quick_sim(scenario::two_walker_crossing(0.5));
        assert_eq!(sim.num_people(), 2);
        assert_eq!(sim.total_sweeps(), 500);
        let mut count = 0;
        while let Some(set) = sim.next_sweeps() {
            assert_eq!(set.per_rx.len(), 3);
            assert_eq!(set.per_rx[0].len(), 100);
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = quick_sim(scenario::two_walker_radial_pass(0.2));
        let mut b = quick_sim(scenario::two_walker_radial_pass(0.2));
        while let (Some(sa), Some(sb)) = (a.next_sweeps(), b.next_sweeps()) {
            assert_eq!(sa.per_rx, sb.per_rx);
        }
    }

    #[test]
    fn two_people_add_energy_over_one() {
        // Same scene/noise seed, one vs two moving bodies: the two-person
        // baseband must carry more echo energy.
        let walker = |x: f64| {
            PersonSpec::adult(LinePath::new(
                Vec3::new(x, 4.0, 1.0),
                Vec3::new(x, 6.0, 1.0),
                1.0,
            ))
        };
        let mut one = quick_sim(vec![walker(-1.0)]);
        let mut two = quick_sim(vec![walker(-1.0), walker(1.5)]);
        let e1: f64 = {
            let s = one.next_sweeps().unwrap();
            s.per_rx[0].iter().map(|x| x * x).sum()
        };
        let e2: f64 = {
            let s = two.next_sweeps().unwrap();
            s.per_rx[0].iter().map(|x| x * x).sum()
        };
        assert!(e2 > e1, "two-person energy {e2} vs one-person {e1}");
    }

    #[test]
    fn ground_truth_is_per_person() {
        let sim = quick_sim(scenario::two_walker_crossing(4.0));
        let a0 = sim.true_state(0, 0.0).center;
        let b0 = sim.true_state(1, 0.0).center;
        assert!(a0.distance(b0) > 1.0);
        // Surface truth sits one torso radius toward the array.
        let s = sim.surface_truth(0, 0.0);
        assert!(s.distance(Vec3::new(0.0, 0.0, 1.0)) < a0.distance(Vec3::new(0.0, 0.0, 1.0)));
    }

    #[test]
    fn duration_is_longest_script() {
        let people = vec![
            PersonSpec::adult(Stand {
                position: Vec3::new(0.0, 4.0, 1.0),
                time: 0.1,
            }),
            PersonSpec::adult(Stand {
                position: Vec3::new(1.0, 5.0, 1.0),
                time: 0.3,
            }),
        ];
        let sim = quick_sim(people);
        assert_eq!(sim.total_sweeps(), 300);
    }

    #[test]
    fn scenarios_have_expected_shapes() {
        assert_eq!(scenario::two_walker_crossing(8.0).len(), 2);
        assert_eq!(scenario::two_walker_radial_pass(8.0).len(), 2);
        assert_eq!(scenario::three_walkers(8.0).len(), 3);
        // Crossing paths actually cross in the horizontal plane: the x
        // orderings at start and end flip.
        let c = scenario::two_walker_crossing(8.0);
        let (a0, a1) = (c[0].motion.state(0.0).center, c[0].motion.state(8.0).center);
        let (b0, b1) = (c[1].motion.state(0.0).center, c[1].motion.state(8.0).center);
        assert!(a0.x < b0.x && a1.x > b1.x, "paths must cross in x");
        // Radial pass: round-trip order flips (y order flips at equal |x|).
        let r = scenario::two_walker_radial_pass(8.0);
        assert!(r[0].motion.state(0.0).center.y < r[1].motion.state(0.0).center.y);
        assert!(r[0].motion.state(8.0).center.y > r[1].motion.state(8.0).center.y);
    }

    #[test]
    #[should_panic]
    fn empty_people_rejected() {
        let _ = quick_sim(Vec::new());
    }
}
