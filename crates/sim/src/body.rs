//! The human reflector model.
//!
//! WiTrack sees the body *surface*, not its center: the paper's evaluation
//! explicitly measures "the average depth of the center with respect to the
//! body surface" per subject and compensates for it (§8(a)). The torso is
//! also tall — the specular point wanders vertically between hip and chest
//! as the person moves, which the paper identifies as the reason the z-error
//! is roughly twice the x/y error (§9.1: "the result of the human body being
//! larger along the z dimension than along x or y").
//!
//! [`BodyModel`] captures exactly that: a vertical-cylinder torso whose
//! per-frame reflection point is the surface point facing the array, with
//! vertical wander over the torso extent and a small horizontal wander.

use serde::{Deserialize, Serialize};
use witrack_geom::Vec3;

/// Geometric/reflective parameters of a tracked person.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodyModel {
    /// Torso radius (m): the center→surface depth the paper compensates.
    pub torso_radius: f64,
    /// Half-extent of the torso along z (m); the specular point wanders
    /// within ±this around the body-center height.
    pub torso_half_height: f64,
    /// Torso radar cross-section (relative units; the body is a weak
    /// reflector compared to walls/furniture).
    pub torso_rcs: f64,
    /// Arm/hand radar cross-section — "the reflection surface of an arm is
    /// much smaller than the reflection surface of an entire human body"
    /// (§6.1).
    pub arm_rcs: f64,
    /// Std-dev of the per-frame vertical wander of the specular point (m).
    pub z_wander_std: f64,
    /// Std-dev of the per-frame horizontal wander (m).
    pub xy_wander_std: f64,
    /// Std-dev of the *per-antenna* differential wander (m): each receive
    /// antenna's bistatic geometry selects a slightly different specular
    /// patch, so their TOF errors are not perfectly common-mode. This is
    /// the differential noise the §5 geometry amplifies into x/z error.
    pub differential_wander_std: f64,
}

impl Default for BodyModel {
    fn default() -> Self {
        BodyModel::adult()
    }
}

impl BodyModel {
    /// A typical adult: 18 cm torso radius, ±35 cm torso half-height.
    pub fn adult() -> BodyModel {
        BodyModel {
            torso_radius: 0.18,
            torso_half_height: 0.35,
            torso_rcs: 1.0,
            arm_rcs: 0.12,
            z_wander_std: 0.12,
            xy_wander_std: 0.06,
            differential_wander_std: 0.035,
        }
    }

    /// A smaller build (used to vary subjects across trials, §8(c)).
    pub fn small_adult() -> BodyModel {
        BodyModel {
            torso_radius: 0.14,
            torso_half_height: 0.30,
            torso_rcs: 0.7,
            arm_rcs: 0.09,
            z_wander_std: 0.10,
            xy_wander_std: 0.03,
            differential_wander_std: 0.03,
        }
    }

    /// Scales RCS and size smoothly between builds; `s = 1` is [`adult`](BodyModel::adult).
    pub fn scaled(s: f64) -> BodyModel {
        let a = BodyModel::adult();
        BodyModel {
            torso_radius: a.torso_radius * s,
            torso_half_height: a.torso_half_height * s,
            torso_rcs: a.torso_rcs * s * s,
            arm_rcs: a.arm_rcs * s * s,
            z_wander_std: a.z_wander_std * s,
            xy_wander_std: a.xy_wander_std * s,
            differential_wander_std: a.differential_wander_std * s,
        }
    }

    /// The specular reflection point on the torso surface for a body whose
    /// *center* is at `center`, as seen from `observer` (the array), with a
    /// per-frame wander sample `(dx, dy, dz)` (already scaled by the wander
    /// std-devs; pass zeros for the mean point).
    ///
    /// The point sits one torso radius from the center toward the observer
    /// (horizontally) and wanders over the torso extent vertically.
    pub fn reflection_point(&self, center: Vec3, observer: Vec3, wander: Vec3) -> Vec3 {
        let toward = (observer - center).xy().normalized_or_zero();
        let z = (center.z + wander.z).clamp(
            center.z - self.torso_half_height,
            center.z + self.torso_half_height,
        );
        Vec3::new(
            center.x + toward.x * self.torso_radius + wander.x,
            center.y + toward.y * self.torso_radius + wander.y,
            z,
        )
    }

    /// The *mean* reflection point (zero wander) — what the evaluation
    /// compares estimates against after the paper's §8(a) depth
    /// compensation.
    pub fn mean_reflection_point(&self, center: Vec3, observer: Vec3) -> Vec3 {
        self.reflection_point(center, observer, Vec3::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflection_point_faces_the_observer() {
        let b = BodyModel::adult();
        let center = Vec3::new(0.0, 5.0, 1.0);
        let observer = Vec3::new(0.0, 0.0, 1.0);
        let p = b.reflection_point(center, observer, Vec3::ZERO);
        // Offset toward -y by one radius, same z.
        assert!((p.y - (5.0 - b.torso_radius)).abs() < 1e-12);
        assert_eq!(p.x, 0.0);
        assert_eq!(p.z, 1.0);
        // Distance to observer is shorter than from the center.
        assert!(p.distance(observer) < center.distance(observer));
    }

    #[test]
    fn oblique_observer_shifts_point_horizontally() {
        let b = BodyModel::adult();
        let center = Vec3::new(2.0, 4.0, 1.0);
        let observer = Vec3::new(0.0, 0.0, 1.3);
        let p = b.reflection_point(center, observer, Vec3::ZERO);
        // The offset is purely horizontal (xy) with magnitude = radius.
        assert!((p.distance_xy(center) - b.torso_radius).abs() < 1e-9);
        assert_eq!(p.z, center.z);
        // And points toward the observer.
        assert!(p.distance(observer) < center.distance(observer));
    }

    #[test]
    fn z_wander_is_clamped_to_torso() {
        let b = BodyModel::adult();
        let center = Vec3::new(0.0, 5.0, 1.0);
        let obs = Vec3::ZERO;
        let p = b.reflection_point(center, obs, Vec3::new(0.0, 0.0, 5.0));
        assert!((p.z - (1.0 + b.torso_half_height)).abs() < 1e-12);
        let p = b.reflection_point(center, obs, Vec3::new(0.0, 0.0, -5.0));
        assert!((p.z - (1.0 - b.torso_half_height)).abs() < 1e-12);
    }

    #[test]
    fn arm_is_much_smaller_than_torso() {
        let b = BodyModel::adult();
        assert!(b.torso_rcs > 5.0 * b.arm_rcs);
    }

    #[test]
    fn scaled_body_shrinks_consistently() {
        let s = BodyModel::scaled(0.8);
        let a = BodyModel::adult();
        assert!((s.torso_radius - 0.8 * a.torso_radius).abs() < 1e-12);
        assert!((s.torso_rcs - 0.64 * a.torso_rcs).abs() < 1e-12);
        assert_eq!(BodyModel::scaled(1.0), a);
    }

    #[test]
    fn degenerate_observer_at_center_is_safe() {
        let b = BodyModel::adult();
        let center = Vec3::new(0.0, 5.0, 1.0);
        // Observer directly above: xy direction degenerates to zero.
        let p = b.reflection_point(center, Vec3::new(0.0, 5.0, 3.0), Vec3::ZERO);
        assert!(p.is_finite());
        assert_eq!(p.xy(), center.xy());
    }
}
