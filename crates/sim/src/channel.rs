//! The RF channel: which echoes reach each receive antenna, and how strong.
//!
//! For every receive antenna the channel produces a list of [`PathEcho`]s
//! (round-trip distance + amplitude), which the front end turns into
//! baseband tones. Amplitudes follow the bistatic radar equation in
//! amplitude form — `√RCS · √(G_tx·G_rx) / (d_tx · d_rx)` — times wall
//! transmission/reflection factors and the optional direct-path occlusion.
//!
//! Path classes (paper §4.2–4.3):
//! * **static flashes**: Tx → wall → Rx for every wall, plus Tx → clutter →
//!   Rx for every static reflector. Constant over time; removed by
//!   background subtraction.
//! * **direct body echo**: Tx → body surface → Rx, attenuated by the front
//!   wall twice and by the occluder.
//! * **dynamic multipath**: Tx → body → bounce wall → Rx and Tx → bounce
//!   wall → body → Rx, via mirror images. Always geometrically longer than
//!   the direct echo — the invariant the bottom-contour tracker relies on.
//! * **arm echo**: same as the direct body path with the smaller arm RCS.

use crate::body::BodyModel;
use crate::scene::Scene;
use witrack_geom::{AntennaArray, Vec3};

/// One propagation path's contribution to a receive antenna's baseband.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathEcho {
    /// Total path length Tx → … → Rx (m).
    pub round_trip_m: f64,
    /// Amplitude at the receiver (arbitrary linear units).
    pub amplitude: f64,
}

/// The scene + array + body, ready to enumerate echo paths.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Environment geometry and losses.
    pub scene: Scene,
    /// The sensing array (one Tx, N ≥ 3 Rx).
    pub array: AntennaArray,
    /// Reflector model of the tracked person.
    pub body: BodyModel,
    /// Amplitude of a unit-RCS reflector at 1 m × 1 m leg distances.
    pub reference_amplitude: f64,
}

impl Channel {
    /// Creates a channel with the default reference amplitude (chosen so a
    /// body at mid-room through a wall yields a comfortably detectable tone
    /// against the default front-end noise).
    pub fn new(scene: Scene, array: AntennaArray, body: BodyModel) -> Channel {
        Channel {
            scene,
            array,
            body,
            reference_amplitude: 100.0,
        }
    }

    /// Amplitude for a reflector of cross-section `rcs` at `point`, reached
    /// directly (no wall bounce) from Tx and Rx `k`. Returns 0 if outside
    /// either beam. `occluded` applies the scene's direct-path occlusion.
    fn direct_amplitude(&self, point: Vec3, rcs: f64, k: usize, occluded: bool) -> f64 {
        let tx = &self.array.tx;
        let rx = &self.array.rx[k];
        let g = tx.gain_toward(point) * rx.gain_toward(point);
        if g <= 0.0 {
            return 0.0;
        }
        let d1 = tx.position.distance(point).max(0.3);
        let d2 = point.distance(rx.position).max(0.3);
        let walls = self.scene.crossing_amp(tx.position, point)
            * self.scene.crossing_amp(point, rx.position);
        let occ = if occluded {
            self.scene.direct_occlusion_amp
        } else {
            1.0
        };
        self.reference_amplitude * rcs.sqrt() * g.sqrt() * walls * occ / (d1 * d2)
    }

    /// Static paths for receive antenna `k`: wall flashes and clutter.
    /// Constant over the experiment — precompute once.
    pub fn static_paths(&self, k: usize) -> Vec<PathEcho> {
        let tx = &self.array.tx;
        let rx = &self.array.rx[k];
        let mut out = Vec::new();
        // Wall flashes: specular Tx → wall → Rx.
        for wall in self.scene.all_walls() {
            if let Some(len) = wall.plane.bounce_path_length(tx.position, rx.position) {
                let eff = (len / 2.0).max(0.3);
                let amp = self.reference_amplitude * wall.material.reflection_amp / (eff * eff);
                if amp > 0.0 {
                    out.push(PathEcho {
                        round_trip_m: len,
                        amplitude: amp,
                    });
                }
            }
        }
        // Clutter: treated like small static bodies (no occlusion).
        for c in &self.scene.clutter {
            let amp = self.direct_amplitude(c.position, c.rcs, k, false);
            if amp > 0.0 {
                out.push(PathEcho {
                    round_trip_m: self.array.round_trip(c.position, k),
                    amplitude: amp,
                });
            }
        }
        out
    }

    /// Moving-reflector paths for receive antenna `k`, given the body's
    /// specular `point` and cross-section `rcs`: the direct echo plus one
    /// dynamic-multipath bounce per bounce wall in each direction.
    pub fn moving_paths(&self, point: Vec3, rcs: f64, k: usize) -> Vec<PathEcho> {
        let tx = &self.array.tx;
        let rx = &self.array.rx[k];
        let mut out = Vec::new();

        // Direct (occludable) echo.
        let amp = self.direct_amplitude(point, rcs, k, true);
        if amp > 0.0 {
            out.push(PathEcho {
                round_trip_m: tx.position.distance(point) + point.distance(rx.position),
                amplitude: amp,
            });
        }

        // Dynamic multipath: body → wall → Rx (and the reciprocal
        // Tx → wall → body). These avoid the occluder by construction.
        let d_tx = tx.position.distance(point).max(0.3);
        let d_rx = point.distance(rx.position).max(0.3);
        let g = tx.gain_toward(point) * rx.gain_toward(point);
        if g <= 0.0 {
            return out;
        }
        for wall in &self.scene.bounce_walls {
            // Outbound leg direct, return leg bounced.
            if let Some(bounce_len) = wall.plane.bounce_path_length(point, rx.position) {
                let walls = self.scene.crossing_amp(tx.position, point);
                let amp = self.reference_amplitude
                    * rcs.sqrt()
                    * g.sqrt()
                    * wall.material.reflection_amp
                    * walls
                    / (d_tx * bounce_len.max(0.3));
                if amp > 1e-9 {
                    out.push(PathEcho {
                        round_trip_m: d_tx + bounce_len,
                        amplitude: amp,
                    });
                }
            }
            // Outbound leg bounced, return leg direct.
            if let Some(bounce_len) = wall.plane.bounce_path_length(tx.position, point) {
                let walls = self.scene.crossing_amp(point, rx.position);
                let amp = self.reference_amplitude
                    * rcs.sqrt()
                    * g.sqrt()
                    * wall.material.reflection_amp
                    * walls
                    / (bounce_len.max(0.3) * d_rx);
                if amp > 1e-9 {
                    out.push(PathEcho {
                        round_trip_m: bounce_len + d_rx,
                        amplitude: amp,
                    });
                }
            }
        }
        out
    }

    /// Convenience: the exact direct round-trip distance for a reflector at
    /// `p` to antenna `k` (the quantity the pipeline estimates).
    pub fn round_trip(&self, p: Vec3, k: usize) -> f64 {
        self.array.round_trip(p, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::StaticReflector;
    use witrack_geom::AntennaArray;

    fn lab_channel(through_wall: bool) -> Channel {
        Channel::new(
            Scene::witrack_lab(through_wall),
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            BodyModel::adult(),
        )
    }

    #[test]
    fn flash_effect_walls_dwarf_the_body() {
        let ch = lab_channel(true);
        let body_point = Vec3::new(0.0, 5.0, 1.0);
        let statics = ch.static_paths(0);
        assert!(!statics.is_empty());
        let strongest_static = statics.iter().map(|p| p.amplitude).fold(0.0_f64, f64::max);
        let direct = ch.moving_paths(body_point, ch.body.torso_rcs, 0);
        let body_amp = direct[0].amplitude;
        assert!(
            strongest_static > 5.0 * body_amp,
            "flash {strongest_static} vs body {body_amp}"
        );
    }

    #[test]
    fn through_wall_attenuates_body_echo() {
        let body_point = Vec3::new(0.5, 5.0, 1.2);
        let tw = lab_channel(true);
        let los = lab_channel(false);
        let a_tw = tw.moving_paths(body_point, 1.0, 1)[0].amplitude;
        let a_los = los.moving_paths(body_point, 1.0, 1)[0].amplitude;
        // Sheetrock twice: amplitude ×0.25.
        assert!((a_tw / a_los - 0.25).abs() < 1e-9, "ratio {}", a_tw / a_los);
    }

    #[test]
    fn multipath_is_always_longer_than_direct() {
        let ch = lab_channel(true);
        for point in [
            Vec3::new(-2.0, 4.0, 1.0),
            Vec3::new(2.0, 8.0, 0.7),
            Vec3::new(0.0, 6.0, 1.3),
        ] {
            for k in 0..3 {
                let paths = ch.moving_paths(point, 1.0, k);
                assert!(paths.len() > 1, "expected bounce paths");
                let direct = paths[0].round_trip_m;
                for p in &paths[1..] {
                    assert!(
                        p.round_trip_m > direct + 1e-9,
                        "bounce {} not longer than direct {direct}",
                        p.round_trip_m
                    );
                }
            }
        }
    }

    #[test]
    fn occlusion_makes_bounce_dominant() {
        // §4.3: with the direct path occluded, the strongest *moving* return
        // arrives via a side wall — longer but stronger.
        let mut ch = lab_channel(false);
        ch.scene = ch.scene.with_occlusion(0.1);
        let point = Vec3::new(-2.2, 4.0, 1.0); // near the left wall
        let paths = ch.moving_paths(point, 1.0, 0);
        let direct = paths[0];
        let strongest =
            paths[1..]
                .iter()
                .cloned()
                .fold(direct, |a, b| if b.amplitude > a.amplitude { b } else { a });
        assert!(
            strongest.amplitude > direct.amplitude,
            "occluded direct should lose"
        );
        assert!(strongest.round_trip_m > direct.round_trip_m);
    }

    #[test]
    fn behind_array_is_invisible() {
        let ch = lab_channel(false);
        let behind = Vec3::new(0.0, -3.0, 1.0);
        assert!(ch.moving_paths(behind, 1.0, 0).is_empty());
    }

    #[test]
    fn body_amplitude_decays_with_distance() {
        let ch = lab_channel(false);
        let near = ch.moving_paths(Vec3::new(0.0, 3.0, 1.0), 1.0, 0)[0].amplitude;
        let far = ch.moving_paths(Vec3::new(0.0, 9.0, 1.0), 1.0, 0)[0].amplitude;
        assert!(near > 5.0 * far, "near {near} far {far}");
    }

    #[test]
    fn static_paths_include_clutter_within_beam() {
        let ch = lab_channel(true);
        let n_walls = ch.scene.all_walls().count();
        let statics = ch.static_paths(2);
        // Front wall + 1 bounce-wall flash may or may not exist per geometry,
        // but clutter inside the beam must contribute.
        assert!(statics.len() > n_walls.min(2));
        // Every static path has positive amplitude and plausible length.
        for p in &statics {
            assert!(p.amplitude > 0.0);
            assert!(p.round_trip_m > 0.0 && p.round_trip_m < 40.0);
        }
    }

    #[test]
    fn clutter_behind_beam_is_dropped() {
        let mut scene = Scene::free_space();
        scene.clutter.push(StaticReflector {
            position: Vec3::new(0.0, -4.0, 1.0),
            rcs: 100.0,
        });
        let ch = Channel::new(
            scene,
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            BodyModel::adult(),
        );
        assert!(ch.static_paths(0).is_empty());
    }

    #[test]
    fn round_trip_matches_array_geometry() {
        let ch = lab_channel(false);
        let p = Vec3::new(1.0, 6.0, 0.8);
        for k in 0..3 {
            let want = ch.array.tx.position.distance(p) + p.distance(ch.array.rx[k].position);
            assert!((ch.round_trip(p, k) - want).abs() < 1e-12);
        }
    }
}
