//! Wall materials: transmission and reflection at the 5.5–7.25 GHz band.
//!
//! The paper's through-wall experiments use "6-inch hollow walls supported by
//! steel frames with sheet rock on top, which is a standard setup for office
//! buildings" (§9.1). Published measurements in C-band put one-way
//! transmission loss for such walls around 5–8 dB; we model amplitudes, so a
//! 6 dB power loss is a ×0.5 amplitude factor.

use serde::Serialize;

/// Amplitude coefficients of a wall material.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Material {
    /// Human-readable name.
    pub name: &'static str,
    /// Amplitude factor applied to a signal *crossing* the wall once.
    pub transmission_amp: f64,
    /// Amplitude factor applied to a signal *bouncing off* the wall.
    pub reflection_amp: f64,
}

impl Material {
    /// The paper's hollow sheetrock office wall (~6 dB one-way power loss).
    pub const SHEETROCK: Material = Material {
        name: "sheetrock",
        transmission_amp: 0.5,
        reflection_amp: 0.35,
    };

    /// Poured concrete (~20 dB one-way): effectively opaque at low power.
    pub const CONCRETE: Material = Material {
        name: "concrete",
        transmission_amp: 0.1,
        reflection_amp: 0.6,
    };

    /// Glass partition: mostly transparent, weak bounce.
    pub const GLASS: Material = Material {
        name: "glass",
        transmission_amp: 0.85,
        reflection_amp: 0.2,
    };

    /// Metal panel: no transmission, near-total reflection.
    pub const METAL: Material = Material {
        name: "metal",
        transmission_amp: 0.0,
        reflection_amp: 0.95,
    };

    /// Free space (no wall): used for line-of-sight configurations.
    pub const AIR: Material = Material {
        name: "air",
        transmission_amp: 1.0,
        reflection_amp: 0.0,
    };

    /// One-way transmission loss in dB of *power*.
    pub fn transmission_loss_db(&self) -> f64 {
        -20.0 * self.transmission_amp.max(1e-12).log10()
    }

    /// Reflection loss in dB of power.
    pub fn reflection_loss_db(&self) -> f64 {
        -20.0 * self.reflection_amp.max(1e-12).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheetrock_is_about_six_db() {
        let db = Material::SHEETROCK.transmission_loss_db();
        assert!((db - 6.02).abs() < 0.1, "got {db}");
    }

    #[test]
    fn metal_blocks_transmission() {
        assert_eq!(Material::METAL.transmission_amp, 0.0);
        let reflection = Material::METAL.reflection_amp;
        assert!(reflection > 0.9, "metal reflection {reflection}");
        // Loss is huge but finite (guarded log).
        let loss_db = Material::METAL.transmission_loss_db();
        assert!(loss_db > 100.0, "metal loss {loss_db} dB");
    }

    #[test]
    fn air_is_transparent() {
        assert_eq!(Material::AIR.transmission_loss_db(), 0.0);
    }

    #[test]
    fn ordering_of_materials_makes_physical_sense() {
        // Transparency: air > glass > sheetrock > concrete > metal.
        let t = |m: Material| m.transmission_amp;
        assert!(t(Material::AIR) > t(Material::GLASS));
        assert!(t(Material::GLASS) > t(Material::SHEETROCK));
        assert!(t(Material::SHEETROCK) > t(Material::CONCRETE));
        assert!(t(Material::CONCRETE) > t(Material::METAL));
    }
}
