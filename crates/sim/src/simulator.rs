//! The experiment driver: motion + channel + front end + ground truth.
//!
//! A [`Simulator`] plays a [`MotionModel`]
//! through the [`Channel`] and [`FrontEnd`], producing the per-antenna
//! baseband sweeps the real prototype's USRP would deliver — and, like the
//! paper's VICON rig (§8(a)), it knows the exact body trajectory, including
//! the mean body-surface point that the paper's depth compensation reduces
//! evaluation to.

use crate::channel::{Channel, PathEcho};
use crate::frontend::FrontEnd;
use crate::motion::{BodyState, MotionModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use witrack_fmcw::SweepConfig;
use witrack_geom::Vec3;

/// Top-level simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// FMCW sweep parameters (defaults to the paper's prototype).
    pub sweep: SweepConfig,
    /// Per-sample AWGN std-dev at the receiver.
    pub noise_std: f64,
    /// Master seed: derives the front-end noise and specular-wander streams.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            sweep: SweepConfig::witrack(),
            noise_std: 0.05,
            seed: 0,
        }
    }
}

/// One sweep interval's worth of baseband, for all receive antennas.
#[derive(Debug, Clone)]
pub struct SweepSet {
    /// Index of this sweep since the experiment started.
    pub sweep_index: u64,
    /// Time (s) at the *start* of this sweep.
    pub time_s: f64,
    /// Baseband samples per receive antenna, `per_rx[k][sample]`.
    pub per_rx: Vec<Vec<f64>>,
}

/// Plays a motion script through the RF channel, emitting baseband sweeps.
pub struct Simulator {
    cfg: SimConfig,
    channel: Channel,
    motion: Box<dyn MotionModel>,
    frontends: Vec<FrontEnd>,
    static_paths: Vec<Vec<PathEcho>>,
    wander_rng: StdRng,
    current_wander: Vec3,
    /// Per-antenna differential wander, redrawn each frame.
    current_diff_wander: Vec<Vec3>,
    sweep_index: u64,
    total_sweeps: u64,
    scratch: Vec<PathEcho>,
}

impl Simulator {
    /// Creates a simulator. Each receive antenna gets an independent noise
    /// stream; the specular-wander stream is shared (the body is one object
    /// seen by all antennas).
    pub fn new(cfg: SimConfig, channel: Channel, motion: Box<dyn MotionModel>) -> Simulator {
        let n_rx = channel.array.num_rx();
        let frontends = (0..n_rx)
            .map(|k| {
                FrontEnd::new(
                    cfg.sweep,
                    cfg.noise_std,
                    cfg.seed.wrapping_add(k as u64 + 1),
                )
            })
            .collect();
        let static_paths = (0..n_rx).map(|k| channel.static_paths(k)).collect();
        let total_sweeps = (motion.duration() / cfg.sweep.sweep_duration_s).floor() as u64;
        Simulator {
            cfg,
            channel,
            motion,
            frontends,
            static_paths,
            wander_rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17)),
            current_wander: Vec3::ZERO,
            current_diff_wander: vec![Vec3::ZERO; n_rx],
            sweep_index: 0,
            total_sweeps,
            scratch: Vec::new(),
        }
    }

    /// The simulation config.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The channel (scene/array/body) being simulated.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Total sweeps this experiment will emit.
    pub fn total_sweeps(&self) -> u64 {
        self.total_sweeps
    }

    /// Experiment duration (s).
    pub fn duration(&self) -> f64 {
        self.motion.duration()
    }

    /// True body state at time `t` (the "VICON" feed).
    pub fn true_state(&self, t: f64) -> BodyState {
        self.motion.state(t)
    }

    /// The §8(a)-compensated ground truth at time `t`: the *mean body
    /// surface point facing the array*, which is what an unbiased WiTrack
    /// estimate converges to after the paper subtracts each subject's
    /// average center-to-surface depth.
    pub fn surface_truth(&self, t: f64) -> Vec3 {
        let state = self.motion.state(t);
        self.channel
            .body
            .mean_reflection_point(state.center, self.channel.array.tx.position)
    }

    /// Generates the next sweep for every antenna, or `None` when the
    /// scripted motion has ended.
    pub fn next_sweeps(&mut self) -> Option<SweepSet> {
        if self.sweep_index >= self.total_sweeps {
            return None;
        }
        let sweeps_per_frame = self.cfg.sweep.sweeps_per_frame as u64;
        let t = self.sweep_index as f64 * self.cfg.sweep.sweep_duration_s;
        let state = self.motion.state(t);
        // Redraw the specular wander once per processing frame: the wander
        // is the slowly-varying "which patch of torso reflects" state, not
        // per-sweep noise (per-sweep redraws would be averaged away). A
        // motionless body keeps its wander frozen — its reflections must be
        // *identical* across frames so background subtraction cancels them,
        // the behavior the paper's interpolation stage exists for (§4.4,
        // §10's static-user limitation).
        if self.sweep_index.is_multiple_of(sweeps_per_frame) && state.moving {
            let b = &self.channel.body;
            self.current_wander = Vec3::new(
                b.xy_wander_std * crate::gaussian(&mut self.wander_rng),
                b.xy_wander_std * crate::gaussian(&mut self.wander_rng),
                b.z_wander_std * crate::gaussian(&mut self.wander_rng),
            );
            let d = b.differential_wander_std;
            for w in &mut self.current_diff_wander {
                *w = Vec3::new(
                    d * crate::gaussian(&mut self.wander_rng),
                    d * crate::gaussian(&mut self.wander_rng),
                    d * crate::gaussian(&mut self.wander_rng),
                );
            }
        }
        let tx = self.channel.array.tx.position;

        let mut per_rx = Vec::with_capacity(self.frontends.len());
        for k in 0..self.frontends.len() {
            // The bistatic specular point for antenna k faces the midpoint
            // of the Tx/Rx_k pair and carries its own wander component.
            let observer = (tx + self.channel.array.rx[k].position) * 0.5;
            let torso_point = self.channel.body.reflection_point(
                state.center,
                observer,
                self.current_wander + self.current_diff_wander[k],
            );
            self.scratch.clear();
            self.scratch.extend_from_slice(&self.static_paths[k]);
            self.scratch.extend(self.channel.moving_paths(
                torso_point,
                self.channel.body.torso_rcs,
                k,
            ));
            if let Some(hand) = state.hand {
                // The hand is small: direct echo only (its wall bounces are
                // below the noise floor).
                self.scratch.extend(
                    self.channel
                        .moving_paths(hand, self.channel.body.arm_rcs, k)
                        .into_iter()
                        .take(1),
                );
            }
            let mut sweep = Vec::new();
            self.frontends[k].synthesize_sweep(&self.scratch, &mut sweep);
            per_rx.push(sweep);
        }
        let set = SweepSet {
            sweep_index: self.sweep_index,
            time_s: t,
            per_rx,
        };
        self.sweep_index += 1;
        Some(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyModel;
    use crate::motion::{RandomWalk, Rect, Stand};
    use crate::scene::Scene;
    use witrack_geom::AntennaArray;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            sweep: SweepConfig {
                start_freq_hz: 5.56e8,
                bandwidth_hz: 1.69e8,
                sweep_duration_s: 1e-3,
                sample_rate_hz: 100e3,
                sweeps_per_frame: 5,
                transmit_power_w: 1e-3,
            },
            noise_std: 0.02,
            seed: 3,
        }
    }

    fn quick_sim(duration: f64) -> Simulator {
        let cfg = quick_cfg();
        let channel = Channel::new(
            Scene::witrack_lab(true),
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            BodyModel::adult(),
        );
        let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, duration, 0.2, 5);
        Simulator::new(cfg, channel, Box::new(motion))
    }

    #[test]
    fn emits_expected_sweep_count_and_shapes() {
        let mut sim = quick_sim(0.5);
        assert_eq!(sim.total_sweeps(), 500);
        let mut count = 0;
        while let Some(set) = sim.next_sweeps() {
            assert_eq!(set.per_rx.len(), 3);
            for s in &set.per_rx {
                assert_eq!(s.len(), 100);
            }
            assert_eq!(set.sweep_index, count);
            count += 1;
        }
        assert_eq!(count, 500);
        assert!(sim.next_sweeps().is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = quick_sim(0.1);
        let mut b = quick_sim(0.1);
        while let (Some(sa), Some(sb)) = (a.next_sweeps(), b.next_sweeps()) {
            assert_eq!(sa.per_rx, sb.per_rx);
        }
    }

    #[test]
    fn antennas_get_independent_noise() {
        let mut sim = quick_sim(0.1);
        let set = sim.next_sweeps().unwrap();
        // Same scene, different noise: antenna streams must differ.
        assert_ne!(set.per_rx[0], set.per_rx[1]);
    }

    #[test]
    fn surface_truth_sits_between_center_and_array() {
        let sim = quick_sim(1.0);
        let t = 0.4;
        let center = sim.true_state(t).center;
        let surface = sim.surface_truth(t);
        let tx = Vec3::new(0.0, 0.0, 1.0);
        assert!(surface.distance(tx) < center.distance(tx));
        assert!((surface.distance_xy(center) - sim.channel().body.torso_radius).abs() < 1e-9);
    }

    #[test]
    fn static_person_produces_frame_identical_signals() {
        // A perfectly still person + static scene ⇒ consecutive *frames*
        // carry identical deterministic content (only noise differs); with
        // noise disabled the sweeps repeat exactly.
        let mut cfg = quick_cfg();
        cfg.noise_std = 0.0;
        let channel = Channel::new(
            Scene::witrack_lab(true),
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            BodyModel {
                // Disable specular wander so the body is truly frozen.
                z_wander_std: 0.0,
                xy_wander_std: 0.0,
                differential_wander_std: 0.0,
                ..BodyModel::adult()
            },
        );
        let motion = Stand {
            position: Vec3::new(0.5, 5.0, 1.0),
            time: 0.05,
        };
        let mut sim = Simulator::new(cfg, channel, Box::new(motion));
        let first = sim.next_sweeps().unwrap();
        let mut last = None;
        while let Some(s) = sim.next_sweeps() {
            last = Some(s);
        }
        assert_eq!(first.per_rx, last.unwrap().per_rx);
    }

    #[test]
    fn wander_held_constant_within_a_frame() {
        // With a noiseless front end and a static person, sweeps *within*
        // one frame are identical even with wander enabled (it redraws only
        // at frame boundaries).
        let mut cfg = quick_cfg();
        cfg.noise_std = 0.0;
        let channel = Channel::new(
            Scene::witrack_lab(false),
            AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
            BodyModel::adult(),
        );
        let motion = Stand {
            position: Vec3::new(0.0, 4.0, 1.0),
            time: 0.02,
        };
        let mut sim = Simulator::new(cfg, channel, Box::new(motion));
        let s0 = sim.next_sweeps().unwrap();
        let s1 = sim.next_sweeps().unwrap();
        assert_eq!(s0.per_rx, s1.per_rx, "sweeps 0 and 1 share a frame");
    }
}
