//! Motion scripts: where the body (and hand) is at any instant.
//!
//! These generators play the role of the paper's human subjects (§8(c)):
//! free random walking for the 3D-tracking experiments (§9.1–9.3), the four
//! scripted activities of the fall study (§9.5, Fig. 6), and the stand-
//! still-then-point gesture of the pointing study (§6.1, §9.4, Fig. 5).
//! Every script is deterministic given its seed, so experiments regenerate
//! identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use witrack_geom::Vec3;

/// The body at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyState {
    /// Body-center position (m). z is the center height (~1 m standing).
    pub center: Vec3,
    /// Hand position when the script models the arm explicitly.
    pub hand: Option<Vec3>,
    /// Whether any body part is in motion at this instant (ground-truth
    /// bookkeeping; the channel does not consult this).
    pub moving: bool,
}

/// A deterministic motion script.
pub trait MotionModel: Send + Sync {
    /// Body state at time `t` seconds from the script start. Implementations
    /// must be pure (same `t` → same state).
    fn state(&self, t: f64) -> BodyState;

    /// Total scripted duration (s).
    fn duration(&self) -> f64;
}

/// Axis-aligned horizontal rectangle the subject walks within.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum x (m).
    pub x_min: f64,
    /// Maximum x (m).
    pub x_max: f64,
    /// Minimum y (m).
    pub y_min: f64,
    /// Maximum y (m).
    pub y_max: f64,
}

impl Rect {
    /// The paper's 6 × 5 m VICON capture area, 2.5 m past the front wall
    /// (subject stays 3–9 m from the array, §9.1).
    pub fn vicon_area() -> Rect {
        Rect {
            x_min: -2.5,
            x_max: 2.5,
            y_min: 3.0,
            y_max: 9.0,
        }
    }

    /// Whether `(x, y)` lies inside.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x_min && x <= self.x_max && y >= self.y_min && y <= self.y_max
    }

    /// Uniform random point inside.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        (
            self.x_min + rng.random::<f64>() * (self.x_max - self.x_min),
            self.y_min + rng.random::<f64>() * (self.y_max - self.y_min),
        )
    }

    /// Center of the rectangle.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )
    }
}

/// Standing perfectly still (tests; also the §10 static-user limitation —
/// the pipeline must *lose* this person after background subtraction).
#[derive(Debug, Clone, Copy)]
pub struct Stand {
    /// Where the person stands.
    pub position: Vec3,
    /// For how long (s).
    pub time: f64,
}

impl MotionModel for Stand {
    fn state(&self, _t: f64) -> BodyState {
        BodyState {
            center: self.position,
            hand: None,
            moving: false,
        }
    }

    fn duration(&self) -> f64 {
        self.time
    }
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    t0: f64,
    t1: f64,
    from: Vec3,
    to: Vec3,
}

/// Waypoint-to-waypoint random walking with occasional pauses — the
/// "move at will" workload of the tracking experiments (§9.1).
#[derive(Debug, Clone)]
pub struct RandomWalk {
    segments: Vec<Segment>,
    duration: f64,
}

impl RandomWalk {
    /// Builds a walk inside `region` at body-center height `center_z`,
    /// walking speed `speed` (m/s), pausing with probability `pause_prob`
    /// (for 0.5–2 s) at each waypoint. Deterministic in `seed`.
    pub fn new(
        region: Rect,
        center_z: f64,
        speed: f64,
        duration: f64,
        pause_prob: f64,
        seed: u64,
    ) -> RandomWalk {
        assert!(speed > 0.0, "walking speed must be positive");
        assert!(duration > 0.0, "duration must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut segments = Vec::new();
        let (x0, y0) = region.sample(&mut rng);
        let mut here = Vec3::new(x0, y0, center_z);
        let mut t = 0.0;
        while t < duration {
            let (x, y) = region.sample(&mut rng);
            let next = Vec3::new(x, y, center_z);
            let travel = (next.distance(here) / speed).max(1e-3);
            segments.push(Segment {
                t0: t,
                t1: t + travel,
                from: here,
                to: next,
            });
            t += travel;
            here = next;
            if rng.random::<f64>() < pause_prob {
                let pause = 0.5 + 1.5 * rng.random::<f64>();
                segments.push(Segment {
                    t0: t,
                    t1: t + pause,
                    from: here,
                    to: here,
                });
                t += pause;
            }
        }
        RandomWalk { segments, duration }
    }

    fn segment_at(&self, t: f64) -> &Segment {
        let idx = self
            .segments
            .partition_point(|s| s.t1 <= t)
            .min(self.segments.len() - 1);
        &self.segments[idx]
    }
}

impl MotionModel for RandomWalk {
    fn state(&self, t: f64) -> BodyState {
        let t = t.clamp(0.0, self.duration);
        let seg = self.segment_at(t);
        let moving = seg.from != seg.to;
        let frac = if seg.t1 > seg.t0 {
            ((t - seg.t0) / (seg.t1 - seg.t0)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut center = seg.from.lerp(seg.to, frac);
        if moving {
            // Gait bob: a small vertical oscillation at step rate.
            center.z += 0.03 * (2.0 * std::f64::consts::PI * 1.8 * t).sin();
        }
        BodyState {
            center,
            hand: None,
            moving,
        }
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

/// Straight-line walking from `from` to `to` at constant speed, with the
/// same gait bob as [`RandomWalk`] — the deterministic building block of
/// the multi-person scenarios (crossing paths need *scripted*, not random,
/// trajectories so tests can assert which track is which).
#[derive(Debug, Clone, Copy)]
pub struct LinePath {
    /// Start of the walk (body center).
    pub from: Vec3,
    /// End of the walk.
    pub to: Vec3,
    /// Walking speed (m/s).
    pub speed: f64,
}

impl LinePath {
    /// A walk covering `from → to` at `speed` m/s.
    ///
    /// # Panics
    /// Panics unless `speed > 0`.
    pub fn new(from: Vec3, to: Vec3, speed: f64) -> LinePath {
        assert!(speed > 0.0, "walking speed must be positive");
        LinePath { from, to, speed }
    }

    /// Time (s) at which the walker reaches `to` (then stands still).
    pub fn travel_time(&self) -> f64 {
        (self.from.distance(self.to) / self.speed).max(1e-3)
    }
}

impl MotionModel for LinePath {
    fn state(&self, t: f64) -> BodyState {
        let travel = self.travel_time();
        let frac = (t / travel).clamp(0.0, 1.0);
        let moving = t < travel;
        let mut center = self.from.lerp(self.to, frac);
        if moving {
            center.z += 0.03 * (2.0 * std::f64::consts::PI * 1.8 * t).sin();
        }
        BodyState {
            center,
            hand: None,
            moving,
        }
    }

    fn duration(&self) -> f64 {
        self.travel_time()
    }
}

/// The four §9.5 activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Continuous walking; elevation never drops.
    Walk,
    /// Sitting down on a chair (final elevation well above the floor).
    SitChair,
    /// Sitting down on the floor (low final elevation, *slow* descent).
    SitFloor,
    /// A (simulated) fall: low final elevation, *fast* descent with a lurch.
    Fall,
}

impl Activity {
    /// Display name matching the paper's Fig. 6 legend.
    pub fn label(&self) -> &'static str {
        match self {
            Activity::Walk => "Walk",
            Activity::SitChair => "Sit on Chair",
            Activity::SitFloor => "Sit on Ground",
            Activity::Fall => "Fall",
        }
    }

    /// All four activities, in the paper's order.
    pub fn all() -> [Activity; 4] {
        [
            Activity::Walk,
            Activity::SitChair,
            Activity::SitFloor,
            Activity::Fall,
        ]
    }
}

/// A randomized single-activity trial: pace around, then (for the
/// non-walking activities) transition to the final elevation and stay still.
#[derive(Debug, Clone)]
pub struct ActivityScript {
    activity: Activity,
    anchor: Vec3,
    pace_amp: f64,
    pace_omega: f64,
    walk_until: f64,
    transition: f64,
    standing_z: f64,
    final_z: f64,
    lurch: Vec3,
    duration: f64,
}

impl ActivityScript {
    /// Generates a randomized trial of `activity` anchored at `anchor`
    /// (body-center position; `anchor.z` is the standing center height).
    /// The randomization widths are chosen so that, as in the paper, the
    /// fastest floor-sits overlap the slowest falls.
    pub fn generate(activity: Activity, anchor: Vec3, duration: f64, seed: u64) -> ActivityScript {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = || crate::gaussian(&mut rng);
        let standing_z = anchor.z;
        let (walk_until, transition, final_z, lurch) = match activity {
            Activity::Walk => (duration, 0.0, standing_z, Vec3::ZERO),
            Activity::SitChair => (
                duration * 0.4,
                (1.1 + 0.25 * n()).clamp(0.6, 1.8),
                (0.62 + 0.04 * n()).max(0.5),
                Vec3::ZERO,
            ),
            Activity::SitFloor => (
                duration * 0.4,
                (1.35 + 0.45 * n()).clamp(0.5, 2.5),
                (0.26 + 0.04 * n()).max(0.15),
                Vec3::ZERO,
            ),
            Activity::Fall => (
                duration * 0.4,
                (0.38 + 0.13 * n()).clamp(0.2, 0.85),
                (0.12 + 0.03 * n()).max(0.05),
                Vec3::new(0.15 * n(), (0.5 + 0.1 * n()).clamp(0.2, 0.8), 0.0),
            ),
        };
        ActivityScript {
            activity,
            anchor,
            pace_amp: 0.8,
            pace_omega: 1.0, // peak pacing speed = amp·omega = 0.8 m/s
            walk_until,
            transition,
            standing_z,
            final_z,
            lurch,
            duration,
        }
    }

    /// Which activity this trial performs.
    pub fn activity(&self) -> Activity {
        self.activity
    }

    /// Scripted transition duration (0 for walking).
    pub fn transition_s(&self) -> f64 {
        self.transition
    }

    /// Scripted final body-center elevation.
    pub fn final_z(&self) -> f64 {
        self.final_z
    }

    fn smoothstep(x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        x * x * (3.0 - 2.0 * x)
    }
}

impl MotionModel for ActivityScript {
    fn state(&self, t: f64) -> BodyState {
        let t = t.clamp(0.0, self.duration);
        let pace = |tt: f64| {
            Vec3::new(
                self.anchor.x + self.pace_amp * (self.pace_omega * tt).sin(),
                self.anchor.y,
                self.standing_z + 0.03 * (2.0 * std::f64::consts::PI * 1.8 * tt).sin(),
            )
        };
        if t < self.walk_until {
            return BodyState {
                center: pace(t),
                hand: None,
                moving: true,
            };
        }
        let start = pace(self.walk_until);
        let start = Vec3::new(start.x, start.y, self.standing_z);
        if self.transition > 0.0 && t < self.walk_until + self.transition {
            let s = Self::smoothstep((t - self.walk_until) / self.transition);
            let center = Vec3::new(
                start.x + self.lurch.x * s,
                start.y + self.lurch.y * s,
                self.standing_z + (self.final_z - self.standing_z) * s,
            );
            return BodyState {
                center,
                hand: None,
                moving: true,
            };
        }
        // Settled: perfectly static (the §10 static-user regime; the tracker
        // holds the last position by interpolation).
        let center = Vec3::new(start.x + self.lurch.x, start.y + self.lurch.y, self.final_z);
        BodyState {
            center,
            hand: None,
            moving: false,
        }
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

/// The §6.1 pointing gesture: optional walk-in, stand still, lift the arm
/// toward a chosen direction, hold, drop it back, stand still.
#[derive(Debug, Clone)]
pub struct PointingScript {
    stance: Vec3,
    direction: Vec3,
    arm_length: f64,
    shoulder_rise: f64,
    rest_offset: Vec3,
    approach: Option<(Vec3, f64)>, // (entry point, arrival time)
    t_lift: f64,
    lift_duration: f64,
    hold_duration: f64,
    drop_duration: f64,
    duration: f64,
}

impl PointingScript {
    /// A gesture at `stance` (body center) pointing along `direction`
    /// (normalized internally; must not be zero). Timings are randomized
    /// slightly around the paper's protocol (≈1 s of stillness before and
    /// after each stroke).
    ///
    /// # Panics
    /// Panics if `direction` is degenerate.
    pub fn new(stance: Vec3, direction: Vec3, seed: u64) -> PointingScript {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = direction
            .normalized()
            .expect("pointing direction must be non-zero");
        let lift = 0.55 + 0.2 * rng.random::<f64>();
        let hold = 1.0 + 0.3 * rng.random::<f64>();
        let drop = 0.55 + 0.2 * rng.random::<f64>();
        let t_lift = 1.5;
        let tail = 1.5;
        PointingScript {
            stance,
            direction: dir,
            arm_length: 0.68,
            shoulder_rise: 0.45,
            rest_offset: Vec3::new(0.15, 0.0, -0.35),
            approach: None,
            t_lift,
            lift_duration: lift,
            hold_duration: hold,
            drop_duration: drop,
            duration: t_lift + lift + hold + drop + tail,
        }
    }

    /// Adds a walk-in phase from `entry` before the stillness that precedes
    /// the gesture (the Fig. 5 scenario: "a human moving then stopping and
    /// pointing").
    pub fn with_approach(mut self, entry: Vec3, speed: f64) -> PointingScript {
        let arrive = (entry.distance(self.stance) / speed.max(0.1)).max(0.5);
        self.approach = Some((entry, arrive));
        // Shift the whole schedule by the walk + settle time.
        let settle = 1.0;
        self.t_lift += arrive + settle;
        self.duration += arrive + settle;
        self
    }

    /// The scripted pointing direction (unit).
    pub fn true_direction(&self) -> Vec3 {
        self.direction
    }

    /// Hand rest position.
    pub fn hand_rest(&self) -> Vec3 {
        self.stance + self.rest_offset
    }

    /// Hand position at full extension.
    pub fn hand_extended(&self) -> Vec3 {
        self.stance + Vec3::new(0.0, 0.0, self.shoulder_rise) + self.direction * self.arm_length
    }

    /// `(start, end)` of the lift stroke.
    pub fn lift_window(&self) -> (f64, f64) {
        (self.t_lift, self.t_lift + self.lift_duration)
    }

    /// `(start, end)` of the drop stroke.
    pub fn drop_window(&self) -> (f64, f64) {
        let start = self.t_lift + self.lift_duration + self.hold_duration;
        (start, start + self.drop_duration)
    }

    fn smoothstep(x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        x * x * (3.0 - 2.0 * x)
    }
}

impl MotionModel for PointingScript {
    fn state(&self, t: f64) -> BodyState {
        let t = t.clamp(0.0, self.duration);
        // Walk-in phase: whole body moves, hand swings with it.
        if let Some((entry, arrive)) = self.approach {
            if t < arrive {
                let center = entry.lerp(self.stance, t / arrive);
                return BodyState {
                    center,
                    hand: Some(center + self.rest_offset),
                    moving: true,
                };
            }
        }
        let rest = self.hand_rest();
        let ext = self.hand_extended();
        let (lift0, lift1) = self.lift_window();
        let (drop0, drop1) = self.drop_window();
        let (hand, arm_moving) = if t < lift0 {
            (rest, false)
        } else if t < lift1 {
            (
                rest.lerp(ext, Self::smoothstep((t - lift0) / self.lift_duration)),
                true,
            )
        } else if t < drop0 {
            (ext, false)
        } else if t < drop1 {
            (
                ext.lerp(rest, Self::smoothstep((t - drop0) / self.drop_duration)),
                true,
            )
        } else {
            (rest, false)
        };
        BodyState {
            center: self.stance,
            hand: Some(hand),
            moving: arm_moving,
        }
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_sampling_stays_inside() {
        let r = Rect::vicon_area();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let (x, y) = r.sample(&mut rng);
            assert!(r.contains(x, y));
        }
        assert!(!r.contains(0.0, 0.0)); // the array is outside the area
    }

    #[test]
    fn random_walk_is_deterministic_and_bounded() {
        let r = Rect::vicon_area();
        let a = RandomWalk::new(r, 1.0, 1.0, 30.0, 0.3, 42);
        let b = RandomWalk::new(r, 1.0, 1.0, 30.0, 0.3, 42);
        for i in 0..300 {
            let t = i as f64 * 0.1;
            let sa = a.state(t);
            assert_eq!(sa.center, b.state(t).center);
            assert!(
                r.contains(sa.center.x, sa.center.y),
                "escaped at t={t}: {}",
                sa.center
            );
            // Body-center height stays near 1 m (gait bob only).
            assert!((sa.center.z - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn random_walk_speed_is_physical() {
        let walk = RandomWalk::new(Rect::vicon_area(), 1.0, 1.2, 30.0, 0.2, 7);
        let dt = 0.0125;
        for i in 1..2000 {
            let p0 = walk.state((i - 1) as f64 * dt).center;
            let p1 = walk.state(i as f64 * dt).center;
            let v = p0.distance_xy(p1) / dt;
            assert!(v < 1.3 + 1e-6, "speed {v} at frame {i}");
        }
    }

    #[test]
    fn random_walk_actually_pauses() {
        let walk = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 60.0, 0.5, 3);
        let any_pause = (0..6000)
            .map(|i| walk.state(i as f64 * 0.01))
            .any(|s| !s.moving);
        assert!(any_pause, "a 50% pause probability walk should pause");
    }

    #[test]
    fn activity_profiles_match_fig6_shapes() {
        let anchor = Vec3::new(0.0, 5.0, 1.0);
        let dur = 20.0;
        let walk = ActivityScript::generate(Activity::Walk, anchor, dur, 1);
        let chair = ActivityScript::generate(Activity::SitChair, anchor, dur, 2);
        let floor = ActivityScript::generate(Activity::SitFloor, anchor, dur, 3);
        let fall = ActivityScript::generate(Activity::Fall, anchor, dur, 4);
        let final_z = |s: &ActivityScript| s.state(dur - 0.1).center.z;
        // Walking never descends; chair ends mid-height; floor and fall end low.
        assert!((final_z(&walk) - 1.0).abs() < 0.1);
        assert!((final_z(&chair) - 0.62).abs() < 0.2);
        assert!(final_z(&floor) < 0.45);
        assert!(final_z(&fall) < 0.3);
        // The fall transition is much faster than the floor-sit on average.
        assert!(fall.transition_s() < floor.transition_s());
        // After settling, the person is static.
        assert!(!fall.state(dur - 0.1).moving);
        assert!(walk.state(dur - 0.1).moving);
    }

    #[test]
    fn fall_descends_within_its_scripted_window() {
        let anchor = Vec3::new(0.0, 5.0, 1.0);
        let s = ActivityScript::generate(Activity::Fall, anchor, 20.0, 9);
        let t0 = 20.0 * 0.4;
        let z_before = s.state(t0 - 0.01).center.z;
        let z_after = s.state(t0 + s.transition_s() + 0.01).center.z;
        assert!(z_before > 0.9);
        assert!(z_after < 0.3);
    }

    #[test]
    fn activity_randomization_varies_with_seed() {
        let anchor = Vec3::new(0.0, 5.0, 1.0);
        let a = ActivityScript::generate(Activity::Fall, anchor, 20.0, 1);
        let b = ActivityScript::generate(Activity::Fall, anchor, 20.0, 2);
        assert_ne!(a.transition_s(), b.transition_s());
    }

    #[test]
    fn pointing_geometry_is_consistent() {
        let stance = Vec3::new(0.5, 5.0, 1.0);
        let dir = Vec3::new(0.3, 0.8, 0.2);
        let p = PointingScript::new(stance, dir, 11);
        let d = p.true_direction();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        // Extended hand minus shoulder is along the direction, arm length away.
        let shoulder = stance + Vec3::new(0.0, 0.0, 0.45);
        let v = p.hand_extended() - shoulder;
        assert!((v.norm() - 0.68).abs() < 1e-12);
        assert!(v.angle_to(d).unwrap() < 1e-9);
    }

    #[test]
    fn pointing_phases_move_only_the_arm() {
        let stance = Vec3::new(0.0, 4.0, 1.0);
        let p = PointingScript::new(stance, Vec3::new(0.0, 1.0, 0.3), 5);
        let (l0, l1) = p.lift_window();
        let (d0, d1) = p.drop_window();
        assert!(l1 <= d0 && d1 <= p.duration());
        // Body center never moves.
        for i in 0..100 {
            let t = p.duration() * i as f64 / 100.0;
            assert_eq!(p.state(t).center, stance);
        }
        // Before lift: static; mid-lift: moving; hold: static; mid-drop: moving.
        assert!(!p.state(l0 - 0.2).moving);
        assert!(p.state((l0 + l1) / 2.0).moving);
        assert!(!p.state((l1 + d0) / 2.0).moving);
        assert!(p.state((d0 + d1) / 2.0).moving);
        // Hand ends back at rest.
        let end = p.state(p.duration()).hand.unwrap();
        assert!(end.distance(p.hand_rest()) < 1e-9);
    }

    #[test]
    fn approach_shifts_schedule_and_walks_in() {
        let stance = Vec3::new(0.0, 5.0, 1.0);
        let entry = Vec3::new(-2.0, 8.0, 1.0);
        let p = PointingScript::new(stance, Vec3::Y, 8).with_approach(entry, 1.0);
        let s0 = p.state(0.0);
        assert!(s0.moving);
        assert!(s0.center.distance(entry) < 1e-9);
        // Mid-approach the body is between entry and stance.
        let mid = p.state(1.0).center;
        assert!(mid.distance(entry) > 0.1 && mid.distance(stance) > 0.1);
        // Lift still happens and the body is at the stance by then.
        let (l0, _) = p.lift_window();
        assert_eq!(p.state(l0 + 0.01).center, stance);
    }

    #[test]
    fn stand_is_static() {
        let s = Stand {
            position: Vec3::new(1.0, 4.0, 1.0),
            time: 10.0,
        };
        assert!(!s.state(5.0).moving);
        assert_eq!(s.state(9.9).center, s.position);
        assert_eq!(s.duration(), 10.0);
    }

    #[test]
    #[should_panic]
    fn zero_pointing_direction_panics() {
        let _ = PointingScript::new(Vec3::ZERO, Vec3::ZERO, 1);
    }
}
