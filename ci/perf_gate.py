#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh BENCH_*.json against the
checked-in baseline and fail on a throughput drop beyond tolerance.

Usage:
    ci/perf_gate.py BASELINE FRESH [--tolerance 0.30]

Understands the artifact shapes this repo emits:

* ``t_throughput``: top-level ``scenarios``, keyed by ``name``, metric
  ``frames_per_sec``;
* ``t_serve``: top-level ``results``, keyed by
  ``(wire, shards, sensors)`` (entries without a ``wire`` field — the
  pre-v2 artifact — count as the f64 wire), gating ``per_sensor_fps``
  and, when present, the wire byte rate ``wire_mb_per_sec`` and the
  per-wire ``sensors_sustained_realtime`` counts;
* ``t_ingest``: top-level ``results`` keyed by ``variant``, metric
  ``msgs_per_sec``;
* ``t_dsp``: top-level ``results`` keyed by ``(kernel, path)``, metric
  ``calls_per_sec`` — per-kernel SIMD/scalar microbenchmarks plus the
  whole profile-stage frame rows;
* ``t_fuse``: top-level ``results`` keyed by ``(sensors, overlap)``,
  metric ``fused_tracks_per_sec`` (the ``handoff_latency_ms`` scalar is
  lower-is-better and informational, so it is not gated);
* ``t_fanout``: top-level ``results`` keyed by ``(mode, subscriptions)``,
  metric ``matched_events_per_sec``, plus the top-level ``bytes_ratio``
  (offered bytes, unfiltered over selective — the filtered-fan-out
  savings factor, higher is better). The ≥10x floor on that ratio is
  contract-checked inside the bin itself;
* ``t_chaos``: top-level ``results`` keyed by ``(room, fault)``, metric
  ``recovery_to_good_ns`` — the time from the fault window closing to
  the first epoch where every covered target is re-acquired. It is
  lower-is-better and gated with the latency tolerance: recovery time
  quantizes to whole fused epochs (the bin floors it at one frame
  period), so one epoch of jitter can double a small value, exactly
  like the log2 histogram buckets. Error medians and tracked fractions
  are contract-checked inside the bin itself (it exits nonzero on a
  violation), so the gate does not re-judge them.

Rows may additionally carry latency-quantile fields (``*_p50_ns`` /
``*_p99_ns``, from the witrack-obs stage histograms). These are
lower-is-better: a fresh quantile above ``baseline * (1 +
lat-tolerance)`` fails. The histograms bucket at log2 (≤2x relative
resolution), so one bucket of jitter can double an estimate — the
default latency tolerance is 3.0 (fail only past 4x baseline).
Artifacts written before these fields existed simply contribute no
latency entries, so old-vs-new comparisons still work. The t_serve
shard-queue latencies (``queue_wait_*``, ``dequeue_to_report_*``)
measure queue occupancy under deliberate Block backpressure — they
swing an order of magnitude with host load, so they are carried in the
artifact for inspection but never gated.

Only entries present in BOTH files are compared (CI smoke runs a subset
of the baseline matrix). Improvements never fail; a fresh value below
``baseline * (1 - tolerance)`` does. Exits 0 on pass, 1 on regression,
2 on a malformed or incomparable pair.
"""

import argparse
import json
import sys


# Latency fields that track queue occupancy (not code speed): present
# in the artifact, never gated.
UNGATED_LATENCY = ("queue_wait", "dequeue_to_report")


def latency_entries(key, row):
    """Yield lower-is-better latency-quantile entries a row may carry.

    Rows written before the telemetry fields existed yield nothing, so a
    new gate run still compares cleanly against an old baseline.
    """
    for field, value in row.items():
        if field.endswith(("_p50_ns", "_p99_ns")) and not field.startswith(UNGATED_LATENCY):
            yield key + (field,), float(value)


def entries(doc):
    """Yield (key, metric_value) pairs for any supported artifact shape."""
    if "scenarios" in doc:
        for s in doc["scenarios"]:
            yield s["name"], float(s["frames_per_sec"])
            yield from latency_entries((s["name"],), s)
    elif "results" in doc:
        for r in doc["results"]:
            if "subscriptions" in r:  # t_fanout rows
                key = ("fanout", r["mode"], r["subscriptions"])
                yield key + ("matched/s",), float(r["matched_events_per_sec"])
                yield from latency_entries(key, r)
                continue
            if "variant" in r:  # t_ingest rows
                yield (r["variant"], "msgs/s"), float(r["msgs_per_sec"])
                continue
            if "kernel" in r:  # t_dsp rows
                yield ("dsp", r["kernel"], r["path"]), float(r["calls_per_sec"])
                continue
            if "fault" in r:  # t_chaos rows
                key = ("chaos", r["room"], r["fault"])
                yield key + ("recovery_to_good_ns",), float(r["recovery_to_good_ns"])
                continue
            if "fused_tracks_per_sec" in r:  # t_fuse rows
                key = ("fuse", r["sensors"], r.get("overlap", 1.0))
                yield key + ("fused/s",), float(r["fused_tracks_per_sec"])
                yield from latency_entries(key, r)
                continue
            key = (r.get("wire", "f64"), r["shards"], r["sensors"])
            yield key + ("fps",), float(r["per_sensor_fps"])
            if "wire_mb_per_sec" in r:
                yield key + ("MB/s",), float(r["wire_mb_per_sec"])
            yield from latency_entries(key, r)
        ratio = doc.get("bytes_ratio")
        if ratio is not None:  # t_fanout: filtered-fan-out savings factor
            yield ("fanout", "bytes_ratio"), float(ratio)
        sustained = doc.get("sensors_sustained_realtime")
        if isinstance(sustained, dict):
            for wire, n in sustained.items():
                yield ("sustained", wire), float(n)
        elif isinstance(sustained, (int, float)):
            yield ("sustained", "f64"), float(sustained)
    else:
        raise KeyError("neither 'scenarios' nor 'results' present")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop (default 0.30)")
    ap.add_argument("--lat-tolerance", type=float, default=3.0,
                    help="allowed fractional growth of latency quantiles "
                         "(default 3.0, i.e. fail past 4x baseline; the "
                         "log2 histogram buckets make finer gates noisy)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = dict(entries(json.load(f)))
        with open(args.fresh) as f:
            fresh = dict(entries(json.load(f)))
    except (OSError, ValueError, KeyError) as e:
        print(f"perf gate: cannot read artifacts: {e}", file=sys.stderr)
        return 2

    common = sorted(set(base) & set(fresh), key=str)
    if not common:
        print("perf gate: no comparable entries between baseline and fresh run",
              file=sys.stderr)
        return 2

    # sensors_sustained_realtime is discontinuous (it jumps between the
    # sensor counts the run actually tested) and the CI smoke tests a
    # subset of the baseline matrix, so gating it needs two adjustments:
    # the baseline is clamped to the largest sensor count the fresh run
    # tested for that wire, and the tolerance is widened to half — one
    # marginal cell flickering across the 80 fps line must not read as a
    # 2x regression when the continuous per-cell fps gate already bounds
    # real slowdowns at 30%.
    fresh_max_sensors = {}
    for key in fresh:
        if isinstance(key, tuple) and len(key) == 4 and key[3] == "fps":
            wire = key[0]
            fresh_max_sensors[wire] = max(fresh_max_sensors.get(wire, 0), key[2])

    failed = False
    for key in common:
        baseline = base[key]
        tolerance = args.tolerance
        lower_is_better = (isinstance(key, tuple) and key
                           and str(key[-1]).endswith("_ns"))
        if isinstance(key, tuple) and key and key[0] == "sustained":
            limit = fresh_max_sensors.get(key[1])
            if limit is not None:
                baseline = min(baseline, float(limit))
            tolerance = max(tolerance, 0.5)
        if lower_is_better:
            ceiling = baseline * (1.0 + args.lat_tolerance)
            ok = fresh[key] <= ceiling
        else:
            floor = baseline * (1.0 - tolerance)
            ok = fresh[key] >= floor
        ratio = fresh[key] / baseline if baseline > 0 else float("inf")
        verdict = "ok" if ok else "REGRESSION"
        failed |= verdict != "ok"
        print(f"  {key!s:>32}: baseline {baseline:10.1f}  fresh {fresh[key]:10.1f}"
              f"  ({ratio:6.1%})  {verdict}")
    skipped = (set(base) | set(fresh)) - set(common)
    if skipped:
        print(f"  (skipped {len(skipped)} entries present in only one file)")

    if failed:
        print(f"perf gate: FAIL — fresh throughput fell more than "
              f"{args.tolerance:.0%} below baseline (or a latency quantile "
              f"rose more than {args.lat_tolerance:.0%} above it)",
              file=sys.stderr)
        return 1
    print(f"perf gate: pass ({len(common)} entries within {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
