#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh BENCH_*.json against the
checked-in baseline and fail on a throughput drop beyond tolerance.

Usage:
    ci/perf_gate.py BASELINE FRESH [--tolerance 0.30]

Understands both artifact shapes this repo emits:

* ``t_throughput``: top-level ``scenarios``, keyed by ``name``, metric
  ``frames_per_sec``;
* ``t_serve``: top-level ``results``, keyed by ``(shards, sensors)``,
  metric ``per_sensor_fps``.

Only entries present in BOTH files are compared (CI smoke runs a subset
of the baseline matrix). Improvements never fail; a fresh value below
``baseline * (1 - tolerance)`` does. Exits 0 on pass, 1 on regression,
2 on a malformed or incomparable pair.
"""

import argparse
import json
import sys


def entries(doc):
    """Yield (key, metric_value) pairs for either artifact shape."""
    if "scenarios" in doc:
        for s in doc["scenarios"]:
            yield s["name"], float(s["frames_per_sec"])
    elif "results" in doc:
        for r in doc["results"]:
            yield (r["shards"], r["sensors"]), float(r["per_sensor_fps"])
    else:
        raise KeyError("neither 'scenarios' nor 'results' present")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop (default 0.30)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = dict(entries(json.load(f)))
        with open(args.fresh) as f:
            fresh = dict(entries(json.load(f)))
    except (OSError, ValueError, KeyError) as e:
        print(f"perf gate: cannot read artifacts: {e}", file=sys.stderr)
        return 2

    common = sorted(set(base) & set(fresh), key=str)
    if not common:
        print("perf gate: no comparable entries between baseline and fresh run",
              file=sys.stderr)
        return 2

    failed = False
    for key in common:
        floor = base[key] * (1.0 - args.tolerance)
        ratio = fresh[key] / base[key] if base[key] > 0 else float("inf")
        verdict = "ok" if fresh[key] >= floor else "REGRESSION"
        failed |= verdict != "ok"
        print(f"  {key!s:>24}: baseline {base[key]:10.1f}  fresh {fresh[key]:10.1f}"
              f"  ({ratio:6.1%})  {verdict}")
    skipped = (set(base) | set(fresh)) - set(common)
    if skipped:
        print(f"  (skipped {len(skipped)} entries present in only one file)")

    if failed:
        print(f"perf gate: FAIL — fresh throughput fell more than "
              f"{args.tolerance:.0%} below baseline", file=sys.stderr)
        return 1
    print(f"perf gate: pass ({len(common)} entries within {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
