#!/usr/bin/env python3
"""Observability smoke check: validate the text exposition that
``examples/sensor_fleet --stats-out`` pulls over the wire.

Usage:
    ci/obs_smoke.py EXPOSITION_FILE

Every hot-path series the engine registers must be present AND nonzero
for at least one label after the fleet run: engine ingest/emit counters,
per-sensor frame counts, per-stage pipeline latency, per-shard queue
accounting, the fused world-frame counter, and the (global-registry)
dsp plan-cache hits — the last one proves the wire pull merges the
process-wide registry into the engine's. A metric that is registered
but never incremented is exactly the kind of silent telemetry rot this
gate exists to catch.

Exits 0 when every required series checks out, 1 otherwise.
"""

import re
import sys

# Each entry: (display name, regex matching the series' exposition
# line(s) with the value captured as group 1). A series passes when at
# least one matching line has a value > 0.
REQUIRED = [
    ("engine batches_in", r"^witrack_engine_batches_in (\d+)$"),
    ("engine sweeps_processed", r"^witrack_engine_sweeps_processed (\d+)$"),
    ("engine frames_emitted", r"^witrack_engine_frames_emitted (\d+)$"),
    ("engine sessions_opened", r"^witrack_engine_sessions_opened (\d+)$"),
    ("engine world_frames", r"^witrack_engine_world_frames (\d+)$"),
    ("per-sensor frames", r'^witrack_sensor_frames\{sensor="\d+"\} (\d+)$'),
    ("pipeline profile_ns", r'^witrack_pipeline_profile_ns_count\{sensor="\d+"\} (\d+)$'),
    ("pipeline detect_ns", r'^witrack_pipeline_detect_ns_count\{sensor="\d+"\} (\d+)$'),
    ("pipeline associate_ns", r'^witrack_pipeline_associate_ns_count\{sensor="\d+"\} (\d+)$'),
    ("shard queue_wait_ns", r'^witrack_shard_queue_wait_ns_count\{shard="\d+"\} (\d+)$'),
    ("shard dequeue_to_report_ns",
     r'^witrack_shard_dequeue_to_report_ns_count\{shard="\d+"\} (\d+)$'),
    ("room tracks gauge registered", r'^witrack_room_tracks\{room="\d+"\} (-?\d+)$'),
    ("sensor liveness gauge registered",
     r'^witrack_sensor_liveness\{sensor="\d+"\} (-?\d+)$'),
    ("sensor reconnects counter registered",
     r'^witrack_sensor_reconnects\{sensor="\d+"\} (\d+)$'),
    ("dsp plan_cache hits (global registry merged)",
     r"^witrack_dsp_plan_cache_hits (\d+)$"),
    # SIMD hot path: the selected lane width (4 on AVX2+FMA, 1 scalar —
    # either way nonzero once a kernel has run), the fallback counter
    # (zero on vector-capable hosts, so presence-only), and the shard
    # drain loop's cache-blocked frame groups.
    ("dsp simd_lanes", r"^witrack_dsp_simd_lanes (-?\d+)$"),
    ("dsp scalar_fallbacks registered", r"^witrack_dsp_scalar_fallbacks (\d+)$"),
    ("dsp batched_frames", r'^witrack_dsp_batched_frames\{shard="\d+"\} (\d+)$'),
    # Programmable subscriptions (wire v3): the fleet run subscribes to
    # every room, so the hub must have installed subscriptions, run
    # filter programs, matched events, and offered world bytes.
    ("engine subscriptions_opened", r"^witrack_engine_subscriptions_opened (\d+)$"),
    ("engine events_evaluated", r"^witrack_engine_events_evaluated (\d+)$"),
    ("engine events_matched", r"^witrack_engine_events_matched (\d+)$"),
    ("engine world_bytes", r"^witrack_engine_world_bytes (\d+)$"),
    ("room event_eval_ns", r'^witrack_room_event_eval_ns_count\{room="\d+"\} (\d+)$'),
    ("engine subscriptions_closed registered",
     r"^witrack_engine_subscriptions_closed (\d+)$"),
    ("engine events_rate_limited registered",
     r"^witrack_engine_events_rate_limited (\d+)$"),
]

# Registered-but-allowed-zero: presence is required (the series must be
# in the report), the value is not gated. Room gauges read whatever the
# last fused frame held, which may legitimately be zero; liveness is 0
# (= Live) and reconnects stay 0 for a fleet that never misbehaves —
# their presence proves the failure-model plumbing is wired end-to-end.
PRESENCE_ONLY = {
    "room tracks gauge registered",
    "sensor liveness gauge registered",
    "sensor reconnects counter registered",
    # The stats pull happens while the fleet's subscriptions are still
    # open (closed stays 0), and the fleet installs no rate-limited
    # programs — presence proves the v3 counter plumbing is wired.
    "engine subscriptions_closed registered",
    "engine events_rate_limited registered",
    # Zero is the healthy value on a vector-capable host: it counts
    # processes that fell back to scalar kernels.
    "dsp scalar_fallbacks registered",
}


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    try:
        with open(sys.argv[1]) as f:
            text = f.read()
    except OSError as e:
        print(f"obs smoke: cannot read exposition: {e}", file=sys.stderr)
        return 1

    failures = []
    for name, pattern in REQUIRED:
        values = [int(m.group(1)) for m in re.finditer(pattern, text, re.M)]
        if not values:
            failures.append(f"{name}: series absent")
        elif name not in PRESENCE_ONLY and max(values) <= 0:
            failures.append(f"{name}: registered but zero everywhere")
        else:
            peak = max(values) if values else 0
            print(f"  ok {name}: {len(values)} series, peak {peak}")

    if failures:
        for f in failures:
            print(f"  FAIL {f}")
        print("obs smoke: FAIL — hot-path telemetry missing or silent",
              file=sys.stderr)
        return 1
    print(f"obs smoke: pass ({len(REQUIRED)} required series live)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
